// Tests for the host-side self-observability layer (schema v5): the
// host-metric primitives, the `host` report section, the bench-matrix
// round trip and tolerance rules behind imoltp_bench/imoltp_compare,
// and the determinism guarantees around all of it (host data must never
// leak into fingerprinted sections; ConvergenceCheck must be safe on
// degenerate series).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "mcsim/profiler.h"
#include "obs/bench_json.h"
#include "obs/host_metrics.h"
#include "obs/json.h"
#include "obs/report_json.h"
#include "obs/timeline.h"

namespace imoltp {
namespace {

// ------------------------------------------------------ primitives

TEST(HostMetricsTest, MonotonicClockNeverGoesBackwards) {
  const double a = obs::MonotonicSeconds();
  double burn = 0.0;
  for (int i = 0; i < 100000; ++i) burn += static_cast<double>(i);
  const double b = obs::MonotonicSeconds();
  EXPECT_GT(burn, 0.0);
  EXPECT_GE(b, a);
}

TEST(HostMetricsTest, ThreadCpuAndRssAreSane) {
  EXPECT_GE(obs::ThreadCpuSeconds(), 0.0);
  // ru_maxrss is supported on every platform CI runs on; a test binary
  // with gtest linked in certainly exceeds 1 MB resident.
  EXPECT_GT(obs::PeakRssBytes(), uint64_t{1} << 20);
}

TEST(HostMetricsTest, PhaseTimerAccumulatesAcrossScopes) {
  double sink = 0.0;
  { obs::PhaseTimer t(&sink); }
  const double first = sink;
  EXPECT_GE(first, 0.0);
  { obs::PhaseTimer t(&sink); }
  EXPECT_GE(sink, first);  // += semantics: second scope adds, not resets
}

// ------------------------------------------------- host JSON section

obs::HostPerf SampleHostPerf() {
  obs::HostPerf perf;
  perf.parallel_mode = "deterministic";
  perf.populate_seconds = 0.25;
  perf.warmup_seconds = 0.5;
  perf.measure_seconds = 2.0;
  perf.simulated_refs = 1000000;
  perf.simulated_instructions = 4000000;
  perf.refs_per_second = 500000.0;
  perf.instructions_per_second = 2000000.0;
  perf.txns_per_second = 1500.0;
  perf.peak_rss_bytes = 64ull << 20;
  perf.workers.push_back({0, 1.9, 0.95});
  perf.workers.push_back({1, 0.4, 0.2});
  return perf;
}

TEST(HostPerfJsonTest, EmitsEveryField) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("host");
  obs::HostPerfToJson(w, SampleHostPerf());
  w.EndObject();
  auto doc = obs::ParseJson(w.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue& v = doc.value();
  EXPECT_EQ(v.FindPath("host.parallel_mode")->string, "deterministic");
  EXPECT_DOUBLE_EQ(v.FindPath("host.phase_seconds.populate")->number,
                   0.25);
  EXPECT_DOUBLE_EQ(v.FindPath("host.phase_seconds.measure")->number, 2.0);
  EXPECT_DOUBLE_EQ(v.FindPath("host.phase_seconds.total")->number, 2.75);
  EXPECT_DOUBLE_EQ(
      v.FindPath("host.measure.simulated_refs")->number, 1000000.0);
  EXPECT_DOUBLE_EQ(v.FindPath("host.measure.refs_per_sec")->number,
                   500000.0);
  EXPECT_DOUBLE_EQ(
      v.FindPath("host.measure.committed_txns_per_sec")->number, 1500.0);
  EXPECT_DOUBLE_EQ(v.FindPath("host.peak_rss_bytes")->number,
                   static_cast<double>(64ull << 20));
  const obs::JsonValue* workers = v.FindPath("host.workers");
  ASSERT_NE(workers, nullptr);
  ASSERT_EQ(workers->array.size(), 2u);
  EXPECT_DOUBLE_EQ(workers->array[1].Find("utilization")->number, 0.2);
}

TEST(HostPerfJsonTest, ReportCarriesHostSectionOnlyWhenProvided) {
  obs::RunInfo info;
  info.engine = "voltdb";
  info.workload = "micro";
  mcsim::WindowReport report;
  mcsim::CycleModelParams params;
  const obs::HostPerf perf = SampleHostPerf();

  const std::string with_host = obs::RunReportToJson(
      info, report, params, nullptr, nullptr, nullptr, &perf);
  auto doc = obs::ParseJson(with_host);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->FindPath("schema_version")->number,
            obs::kReportSchemaVersion);
  ASSERT_NE(doc->FindPath("host"), nullptr);
  EXPECT_EQ(doc->FindPath("host.parallel_mode")->string, "deterministic");

  const std::string without_host =
      obs::RunReportToJson(info, report, params, nullptr, nullptr);
  auto doc2 = obs::ParseJson(without_host);
  ASSERT_TRUE(doc2.ok());
  EXPECT_EQ(doc2->FindPath("host"), nullptr);
}

// The determinism contract: the fingerprinted/diffed sections of two
// reports that differ ONLY in host data must be bit-identical. Strip
// the host subtree textually and compare.
TEST(HostPerfJsonTest, HostSectionIsTextuallySeparable) {
  obs::RunInfo info;
  info.engine = "hyper";
  info.workload = "tpcb";
  mcsim::WindowReport report;
  report.ipc = 0.75;
  mcsim::CycleModelParams params;

  obs::HostPerf fast = SampleHostPerf();
  obs::HostPerf slow = SampleHostPerf();
  slow.measure_seconds = 20.0;
  slow.refs_per_second = 50000.0;

  const std::string a = obs::RunReportToJson(info, report, params,
                                             nullptr, nullptr, nullptr,
                                             &fast);
  const std::string b = obs::RunReportToJson(info, report, params,
                                             nullptr, nullptr, nullptr,
                                             &slow);
  // The host object is the last section before the closing brace, so
  // everything before the `"host"` key must match bit-for-bit.
  const size_t ha = a.find("\"host\"");
  const size_t hb = b.find("\"host\"");
  ASSERT_NE(ha, std::string::npos);
  ASSERT_NE(hb, std::string::npos);
  EXPECT_EQ(a.substr(0, ha), b.substr(0, hb));
  EXPECT_NE(a.substr(ha), b.substr(hb));
}

// ------------------------------------------------- bench round trip

obs::BenchMatrix SampleMatrix() {
  obs::BenchMatrix m;
  m.label = "baseline";
  m.commit = "abc123";
  m.config = "--engines=voltdb --workloads=tpcb";
  m.created_unix = 1754600000;
  obs::BenchCell c;
  c.id = "voltdb/tpcb/deterministic/w2";
  c.engine = "voltdb";
  c.workload = "tpcb";
  c.mode = "deterministic";
  c.workers = 2;
  c.warmup_txns = 500;
  c.measure_txns = 2000;
  c.seed = 42;
  c.ipc = 0.8123;
  c.instructions_per_txn = 15000.5;
  c.cycles_per_txn = 19000.25;
  c.stalls_per_kinstr = {1.5, 2.5, 3.5, 10.0, 20.0, 30.0};
  c.committed = 4000;
  c.aborts = 12;
  c.wall_seconds = 1.25;
  c.total_wall_seconds = 2.5;
  c.simulated_refs = 9000000;
  c.refs_per_sec = 7200000.0;
  c.instructions_per_sec = 30000000.0;
  c.peak_rss_bytes = 48ull << 20;
  m.cells.push_back(c);
  return m;
}

TEST(BenchJsonTest, MatrixRoundTripsLosslessly) {
  const obs::BenchMatrix m = SampleMatrix();
  auto parsed = obs::ParseBenchMatrix(obs::BenchMatrixToJson(m));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::BenchMatrix& r = *parsed;
  EXPECT_EQ(r.label, "baseline");
  EXPECT_EQ(r.commit, "abc123");
  EXPECT_EQ(r.created_unix, 1754600000u);
  ASSERT_EQ(r.cells.size(), 1u);
  const obs::BenchCell& c = r.cells[0];
  EXPECT_EQ(c.id, "voltdb/tpcb/deterministic/w2");
  EXPECT_EQ(c.workers, 2);
  EXPECT_DOUBLE_EQ(c.ipc, 0.8123);
  EXPECT_DOUBLE_EQ(c.instructions_per_txn, 15000.5);
  EXPECT_DOUBLE_EQ(c.stalls_per_kinstr[5], 30.0);
  EXPECT_EQ(c.committed, 4000u);
  EXPECT_DOUBLE_EQ(c.wall_seconds, 1.25);
  EXPECT_DOUBLE_EQ(c.refs_per_sec, 7200000.0);
  EXPECT_EQ(c.peak_rss_bytes, 48ull << 20);
}

TEST(BenchJsonTest, ParserRejectsStructuralErrors) {
  EXPECT_FALSE(obs::ParseBenchMatrix("[]").ok());
  EXPECT_FALSE(obs::ParseBenchMatrix("{\"label\":\"x\"}").ok());
  EXPECT_FALSE(
      obs::ParseBenchMatrix(
          "{\"bench_schema_version\":999,\"cells\":[]}")
          .ok());
  // A cell without an id cannot be matched and must be rejected.
  EXPECT_FALSE(obs::ParseBenchMatrix(
                   "{\"bench_schema_version\":1,\"cells\":[{}]}")
                   .ok());
  // Sparse timing-only cells are fine.
  auto sparse = obs::ParseBenchMatrix(
      "{\"bench_schema_version\":1,\"cells\":"
      "[{\"id\":\"a/b/c/w1\",\"wall_seconds\":3.5}]}");
  ASSERT_TRUE(sparse.ok());
  EXPECT_DOUBLE_EQ(sparse->cells[0].wall_seconds, 3.5);
  EXPECT_DOUBLE_EQ(sparse->cells[0].ipc, 0.0);
}

// ------------------------------------------------- tolerance rules

TEST(BenchCompareTest, SelfCompareIsClean) {
  const obs::BenchMatrix m = SampleMatrix();
  EXPECT_TRUE(obs::CompareBenchMatrices(m, m, {}).empty());
}

TEST(BenchCompareTest, RefsPerSecRegressionBeyondFloorFails) {
  const obs::BenchMatrix base = SampleMatrix();
  obs::BenchMatrix cand = base;
  // ISSUE acceptance: an injected >20% refs/sec regression must fail
  // under the default 15% floor.
  cand.cells[0].refs_per_sec = base.cells[0].refs_per_sec * 0.75;
  const auto failures = obs::CompareBenchMatrices(base, cand, {});
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].metric, "refs_per_sec");

  // A speed-up never fails (one-sided rule).
  cand.cells[0].refs_per_sec = base.cells[0].refs_per_sec * 2.0;
  EXPECT_TRUE(obs::CompareBenchMatrices(base, cand, {}).empty());
}

TEST(BenchCompareTest, SimulatedDriftIsSymmetric) {
  const obs::BenchMatrix base = SampleMatrix();
  obs::BenchMatrix cand = base;
  cand.cells[0].ipc = base.cells[0].ipc * 1.10;  // faster, still drift
  auto failures = obs::CompareBenchMatrices(base, cand, {});
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].metric, "ipc");

  obs::BenchCompareOptions loose;
  loose.ipc_rtol = 0.25;
  EXPECT_TRUE(obs::CompareBenchMatrices(base, cand, loose).empty());
}

TEST(BenchCompareTest, MissingCellFailsUnlessAllowed) {
  const obs::BenchMatrix base = SampleMatrix();
  obs::BenchMatrix cand = base;
  cand.cells.clear();
  auto failures = obs::CompareBenchMatrices(base, cand, {});
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].metric, "cell");

  obs::BenchCompareOptions opts;
  opts.allow_missing = true;
  EXPECT_TRUE(obs::CompareBenchMatrices(base, cand, opts).empty());
}

TEST(BenchCompareTest, TimingOnlyCellsFallBackToWallClock) {
  obs::BenchMatrix base;
  obs::BenchCell c;
  c.id = "voltdb/tpcb/serial/w1";
  c.wall_seconds = 1.0;
  base.cells.push_back(c);

  obs::BenchMatrix cand = base;
  cand.cells[0].wall_seconds = 1.3;  // 30% slower than the 15% ceiling
  auto failures = obs::CompareBenchMatrices(base, cand, {});
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].metric, "wall_seconds");

  cand.cells[0].wall_seconds = 1.1;  // within the ceiling
  EXPECT_TRUE(obs::CompareBenchMatrices(base, cand, {}).empty());
}

// --------------------------------------------- convergence edge cases

TEST(ConvergenceTest, EmptySeriesIsCheckedFalseConvergedTrue) {
  mcsim::WindowReport report;  // no timeseries at all
  const mcsim::ConvergenceCheck c = core::CheckConvergence(report, 0.1);
  EXPECT_FALSE(c.checked);
  EXPECT_TRUE(c.converged);
}

TEST(ConvergenceTest, SingleBucketSeriesIsCheckedFalseConvergedTrue) {
  mcsim::WindowReport report;
  mcsim::CoreSeries series;
  series.core = 0;
  mcsim::SeriesBucket b;
  b.t0 = 0;
  b.t1 = 1000;
  b.instructions = 800;
  b.model_cycles = 1000.0;
  b.ipc = 0.8;
  series.buckets.push_back(b);
  report.timeseries.push_back(series);
  const mcsim::ConvergenceCheck c = core::CheckConvergence(report, 0.1);
  EXPECT_FALSE(c.checked);
  EXPECT_TRUE(c.converged);
  EXPECT_DOUBLE_EQ(c.divergence, 0.0);
}

// ------------------------------------------------- retry flow events

TEST(TimelineFlowTest, AttemptChainsEmitLinkedFlowEvents) {
  obs::TimelineRecorder recorder(2, 1024);
  // One transaction on core 0 that aborted twice then committed.
  for (int attempt = 1; attempt <= 3; ++attempt) {
    obs::AttemptEvent ev;
    ev.flow_id = 7;
    ev.attempt = attempt;
    ev.committed = attempt == 3;
    ev.t0 = attempt * 1000.0;
    ev.t1 = attempt * 1000.0 + 400.0;
    recorder.RecordAttempt(0, ev);
  }
  mcsim::WindowReport report;
  obs::TimelineOptions options;
  options.engine = "shore-mt";
  options.workload = "tpcb";
  const std::string json =
      obs::TimelineToJson(options, report, &recorder);

  uint64_t spans = 0, counters = 0, flows = 0;
  ASSERT_TRUE(
      obs::ValidateTimelineJson(json, &spans, &counters, &flows).ok());
  // 3 attempts → one "s", one "t" per continuation, one "f": the chain
  // start, middle, and finish each bind to their attempt slice.
  EXPECT_EQ(flows, 3u);

  auto doc = obs::ParseJson(json);
  ASSERT_TRUE(doc.ok());
  const obs::JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  int retry_slices = 0;
  int finishes = 0;
  for (const obs::JsonValue& e : events->array) {
    const obs::JsonValue* ph = e.Find("ph");
    const obs::JsonValue* cat = e.Find("cat");
    if (cat != nullptr && cat->string == "retry" && ph->string == "X") {
      ++retry_slices;
    }
    if (ph != nullptr && ph->string == "f") {
      ++finishes;
      EXPECT_EQ(e.Find("bp")->string, "e");
      EXPECT_TRUE(e.Find("id")->is_number());
    }
  }
  EXPECT_EQ(retry_slices, 3);
  EXPECT_EQ(finishes, 1);
}

TEST(TimelineFlowTest, RecorderCapacityBoundsAttempts) {
  obs::TimelineRecorder recorder(1, 2);
  for (int i = 0; i < 10; ++i) {
    obs::AttemptEvent ev;
    ev.flow_id = static_cast<uint64_t>(i);
    ev.attempt = 1;
    recorder.RecordAttempt(0, ev);
  }
  EXPECT_EQ(recorder.attempts(0).size(), 2u);
}

}  // namespace
}  // namespace imoltp
