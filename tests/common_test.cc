#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/format.h"
#include "common/rng.h"
#include "common/status.h"

namespace imoltp {
namespace {

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::Aborted("conflict").IsAborted());
  EXPECT_EQ(Status::Aborted("conflict").message(), "conflict");
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::Internal().code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::AlreadyExists().code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, ToStringNamesTheCode) {
  EXPECT_EQ(Status::NotFound("row 5").ToString(), "NOT_FOUND: row 5");
  EXPECT_EQ(Status::Aborted("x").ToString(), "ABORTED: x");
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> good(42);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);

  StatusOr<int> bad(Status::NotFound());
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Range(5, 8));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_TRUE(seen.count(5));
  EXPECT_TRUE(seen.count(8));
}

TEST(RngTest, UniformCoversTheDomainRoughlyEvenly) {
  Rng rng(11);
  std::map<uint64_t, int> histogram;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.Uniform(10)];
  for (const auto& [bucket, count] : histogram) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 50) << "bucket " << bucket;
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NonUniformStaysInRangeAndSkews) {
  // TPC-C NURand: values must stay in [lo, hi]; the distribution is
  // non-uniform but covers the range.
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng.NonUniform(1023, 259, 0, 2999);
    ASSERT_LE(v, 2999u);
    seen.insert(v);
  }
  EXPECT_GT(seen.size(), 2000u);
}

// ---------------------------------------------------------------------------
// Format
// ---------------------------------------------------------------------------

TEST(FormatTest, BytesPickTheLargestExactUnit) {
  EXPECT_EQ(FormatBytes(1ULL << 20), "1MB");
  EXPECT_EQ(FormatBytes(10ULL << 20), "10MB");
  EXPECT_EQ(FormatBytes(100ULL << 30), "100GB");
  EXPECT_EQ(FormatBytes(8ULL << 10), "8KB");
  EXPECT_EQ(FormatBytes(100), "100B");
}

TEST(FormatTest, CellRespectsWidthAndPrecision) {
  EXPECT_EQ(FormatCell(1.5, 6, 2), "  1.50");
  EXPECT_EQ(FormatCell(123.456, 8, 1), "   123.5");
}

}  // namespace
}  // namespace imoltp
