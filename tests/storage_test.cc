#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "common/rng.h"
#include "mcsim/machine.h"
#include "storage/buffer_pool.h"
#include "storage/disk_heap_file.h"
#include "storage/slotted_page.h"
#include "storage/table.h"

namespace imoltp::storage {
namespace {

mcsim::MachineConfig NoTlb() {
  mcsim::MachineConfig c;
  c.model_tlb = false;
  return c;
}

// ---------------------------------------------------------------------------
// SlottedPage
// ---------------------------------------------------------------------------

TEST(SlottedPageTest, InsertAndGetRoundTrip) {
  std::vector<uint8_t> page(8192);
  SlottedPage::Format(page.data(), 8192);
  const uint8_t rec[] = {1, 2, 3, 4};
  const uint16_t slot = SlottedPage::Insert(page.data(), rec, 4);
  ASSERT_NE(slot, SlottedPage::kInvalidSlot);
  uint16_t len = 0;
  const uint8_t* got = SlottedPage::Get(page.data(), slot, &len);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(len, 4);
  EXPECT_EQ(0, std::memcmp(got, rec, 4));
}

TEST(SlottedPageTest, RecordsDoNotOverlap) {
  std::vector<uint8_t> page(8192);
  SlottedPage::Format(page.data(), 8192);
  uint8_t rec[16];
  for (int i = 0; i < 100; ++i) {
    std::memset(rec, i, sizeof(rec));
    ASSERT_NE(SlottedPage::Insert(page.data(), rec, 16),
              SlottedPage::kInvalidSlot);
  }
  for (uint16_t s = 0; s < 100; ++s) {
    const uint8_t* got = SlottedPage::Get(page.data(), s);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got[0], static_cast<uint8_t>(s));
    EXPECT_EQ(got[15], static_cast<uint8_t>(s));
  }
}

TEST(SlottedPageTest, DeleteFreesSlotAndGetReturnsNull) {
  std::vector<uint8_t> page(8192);
  SlottedPage::Format(page.data(), 8192);
  const uint8_t rec[8] = {42};
  const uint16_t slot = SlottedPage::Insert(page.data(), rec, 8);
  EXPECT_TRUE(SlottedPage::Delete(page.data(), slot));
  EXPECT_EQ(SlottedPage::Get(page.data(), slot), nullptr);
  EXPECT_FALSE(SlottedPage::Delete(page.data(), slot));  // double delete
}

TEST(SlottedPageTest, FreedSlotIsReused) {
  std::vector<uint8_t> page(8192);
  SlottedPage::Format(page.data(), 8192);
  const uint8_t a[8] = {1};
  const uint8_t b[8] = {2};
  const uint16_t slot = SlottedPage::Insert(page.data(), a, 8);
  SlottedPage::Insert(page.data(), a, 8);
  SlottedPage::Delete(page.data(), slot);
  const uint16_t reused = SlottedPage::Insert(page.data(), b, 8);
  EXPECT_EQ(reused, slot);
  EXPECT_EQ(SlottedPage::Get(page.data(), reused)[0], 2);
  EXPECT_EQ(SlottedPage::NumSlots(page.data()), 2);
}

TEST(SlottedPageTest, FullPageRejectsInsert) {
  std::vector<uint8_t> page(256);
  SlottedPage::Format(page.data(), 256);
  const uint8_t rec[64] = {0};
  int inserted = 0;
  while (SlottedPage::Insert(page.data(), rec, 64) !=
         SlottedPage::kInvalidSlot) {
    ++inserted;
    ASSERT_LT(inserted, 10);
  }
  EXPECT_GE(inserted, 2);
  EXPECT_LT(SlottedPage::FreeBytes(page.data()), 64 + 4);
}

TEST(SlottedPageTest, FreeBytesDecreasesWithInserts) {
  std::vector<uint8_t> page(8192);
  SlottedPage::Format(page.data(), 8192);
  const uint16_t before = SlottedPage::FreeBytes(page.data());
  const uint8_t rec[32] = {0};
  SlottedPage::Insert(page.data(), rec, 32);
  EXPECT_EQ(SlottedPage::FreeBytes(page.data()), before - 32 - 4);
}

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : machine_(NoTlb()), core_(&machine_.core(0)) {}
  mcsim::MachineSim machine_;
  mcsim::CoreSim* core_;
};

TEST_F(BufferPoolTest, NewPageComesUpZeroFilled) {
  BufferPool pool(8, 8192);
  uint8_t* page = pool.FixPage(core_, 1);
  ASSERT_NE(page, nullptr);
  for (int i = 0; i < 8192; ++i) ASSERT_EQ(page[i], 0);
  pool.UnfixPage(core_, 1, false);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST_F(BufferPoolTest, RefixHits) {
  BufferPool pool(8, 8192);
  pool.UnfixPage(core_, 1, false);  // unknown page: no-op
  pool.FixPage(core_, 7);
  pool.UnfixPage(core_, 7, false);
  pool.FixPage(core_, 7);
  pool.UnfixPage(core_, 7, false);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST_F(BufferPoolTest, DirtyPageSurvivesEviction) {
  BufferPool pool(2, 8192);
  uint8_t* page = pool.FixPage(core_, 100);
  page[0] = 0xAB;
  page[8191] = 0xCD;
  pool.UnfixPage(core_, 100, /*dirty=*/true);
  // Evict by filling the pool with other pages.
  for (PageId p = 0; p < 4; ++p) {
    pool.FixPage(core_, p);
    pool.UnfixPage(core_, p, false);
  }
  EXPECT_FALSE(pool.IsResident(100));
  page = pool.FixPage(core_, 100);
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(page[0], 0xAB);
  EXPECT_EQ(page[8191], 0xCD);
  EXPECT_GE(pool.stats().dirty_writebacks, 1u);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(2, 8192);
  uint8_t* a = pool.FixPage(core_, 1);  // stays pinned
  ASSERT_NE(a, nullptr);
  for (PageId p = 10; p < 14; ++p) {
    uint8_t* page = pool.FixPage(core_, p);
    ASSERT_NE(page, nullptr);
    pool.UnfixPage(core_, p, false);
  }
  EXPECT_TRUE(pool.IsResident(1));
}

TEST_F(BufferPoolTest, AllPinnedReturnsNull) {
  BufferPool pool(2, 8192);
  ASSERT_NE(pool.FixPage(core_, 1), nullptr);
  ASSERT_NE(pool.FixPage(core_, 2), nullptr);
  EXPECT_EQ(pool.FixPage(core_, 3), nullptr);
}

TEST_F(BufferPoolTest, ManyPagesChurnKeepsDataIntact) {
  BufferPool pool(16, 8192);
  Rng rng(7);
  std::map<PageId, uint8_t> expected;
  for (int step = 0; step < 2000; ++step) {
    const PageId p = rng.Uniform(64);
    uint8_t* page = pool.FixPage(core_, p);
    ASSERT_NE(page, nullptr);
    auto it = expected.find(p);
    if (it != expected.end()) {
      ASSERT_EQ(page[17], it->second) << "page " << p;
    }
    const uint8_t v = static_cast<uint8_t>(rng.Next());
    page[17] = v;
    expected[p] = v;
    pool.UnfixPage(core_, p, /*dirty=*/true);
  }
  EXPECT_GT(pool.stats().evictions, 0u);
}

TEST_F(BufferPoolTest, TracesPageTableAndFrameTouches) {
  BufferPool pool(8, 8192);
  const uint64_t before = core_->counters().data_accesses;
  pool.FixPage(core_, 5);
  pool.UnfixPage(core_, 5, false);
  EXPECT_GT(core_->counters().data_accesses, before);
}

// ---------------------------------------------------------------------------
// DiskHeapFile
// ---------------------------------------------------------------------------

class DiskHeapFileTest : public ::testing::Test {
 protected:
  DiskHeapFileTest()
      : machine_(NoTlb()),
        core_(&machine_.core(0)),
        pool_(256, 8192),
        file_(&pool_, 1, TwoLongColumns()) {}

  std::vector<uint8_t> Row(int64_t key, int64_t value) {
    std::vector<uint8_t> row(file_.schema().row_bytes());
    file_.schema().SetLong(row.data(), 0, key);
    file_.schema().SetLong(row.data(), 1, value);
    return row;
  }

  mcsim::MachineSim machine_;
  mcsim::CoreSim* core_;
  BufferPool pool_;
  DiskHeapFile file_;
};

TEST_F(DiskHeapFileTest, AppendReadRoundTrip) {
  const RowId rid = file_.Append(core_, Row(7, 49).data());
  ASSERT_NE(rid, kInvalidRow);
  std::vector<uint8_t> out(16);
  ASSERT_TRUE(file_.Read(core_, rid, out.data()));
  EXPECT_EQ(file_.schema().GetLong(out.data(), 0), 7);
  EXPECT_EQ(file_.schema().GetLong(out.data(), 1), 49);
}

TEST_F(DiskHeapFileTest, RowsSpanMultiplePages) {
  std::vector<RowId> rids;
  for (int64_t i = 0; i < 2000; ++i) {
    rids.push_back(file_.Append(core_, Row(i, i * i).data()));
  }
  EXPECT_GT(DiskHeapFile::PageNo(rids.back()), 0u);
  std::vector<uint8_t> out(16);
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(file_.Read(core_, rids[i], out.data()));
    ASSERT_EQ(file_.schema().GetLong(out.data(), 0), i);
  }
}

TEST_F(DiskHeapFileTest, WriteColumnInPlace) {
  const RowId rid = file_.Append(core_, Row(1, 2).data());
  const int64_t v = 999;
  ASSERT_TRUE(file_.WriteColumn(core_, rid, 1, &v));
  std::vector<uint8_t> out(16);
  ASSERT_TRUE(file_.Read(core_, rid, out.data()));
  EXPECT_EQ(file_.schema().GetLong(out.data(), 1), 999);
  EXPECT_EQ(file_.schema().GetLong(out.data(), 0), 1);  // untouched
}

TEST_F(DiskHeapFileTest, DeleteThenReadFails) {
  const RowId rid = file_.Append(core_, Row(1, 2).data());
  ASSERT_TRUE(file_.Delete(core_, rid));
  std::vector<uint8_t> out(16);
  EXPECT_FALSE(file_.Read(core_, rid, out.data()));
  EXPECT_FALSE(file_.Delete(core_, rid));
  EXPECT_EQ(file_.num_rows(), 0u);
}

TEST_F(DiskHeapFileTest, DeletedSpaceIsReused) {
  std::vector<RowId> rids;
  for (int64_t i = 0; i < 300; ++i) {
    rids.push_back(file_.Append(core_, Row(i, i).data()));
  }
  const uint64_t pages_before = pool_.num_pages();
  ASSERT_TRUE(file_.Delete(core_, rids[0]));
  const RowId rid = file_.Append(core_, Row(777, 777).data());
  EXPECT_EQ(rid, rids[0]);  // same page, same slot
  EXPECT_EQ(pool_.num_pages(), pages_before);
}

// ---------------------------------------------------------------------------
// Table (heap + sparse)
// ---------------------------------------------------------------------------

class TableModeTest : public ::testing::TestWithParam<bool> {
 protected:
  TableModeTest() : machine_(NoTlb()), core_(&machine_.core(0)) {}

  std::unique_ptr<Table> Make(uint64_t rows) {
    TableOptions opts;
    opts.row_stride = 64;
    // Sparse mode: force by shrinking the resident budget.
    if (GetParam()) opts.max_resident_bytes = 1;
    return CreateTable("t", TwoLongColumns(), rows, opts);
  }

  mcsim::MachineSim machine_;
  mcsim::CoreSim* core_;
};

TEST_P(TableModeTest, GeneratedRowsAreDeterministic) {
  auto t = Make(1000);
  std::vector<uint8_t> a(16), b(16);
  ASSERT_TRUE(t->ReadRow(core_, 123, a.data()));
  ASSERT_TRUE(t->ReadRow(core_, 123, b.data()));
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), 16));
  EXPECT_EQ(t->schema().GetLong(a.data(), 0), 123);  // key column == id
}

TEST_P(TableModeTest, WriteColumnPersists) {
  auto t = Make(100);
  const int64_t v = -42;
  t->WriteColumn(core_, 5, 1, &v);
  std::vector<uint8_t> row(16);
  ASSERT_TRUE(t->ReadRow(core_, 5, row.data()));
  EXPECT_EQ(t->schema().GetLong(row.data(), 1), -42);
  EXPECT_EQ(t->schema().GetLong(row.data(), 0), 5);
}

TEST_P(TableModeTest, AppendExtendsTable) {
  auto t = Make(10);
  std::vector<uint8_t> row(16);
  t->schema().SetLong(row.data(), 0, 777);
  t->schema().SetLong(row.data(), 1, 888);
  const RowId rid = t->Append(core_, row.data());
  EXPECT_EQ(rid, 10u);
  EXPECT_EQ(t->num_rows(), 11u);
  std::vector<uint8_t> out(16);
  ASSERT_TRUE(t->ReadRow(core_, rid, out.data()));
  EXPECT_EQ(t->schema().GetLong(out.data(), 0), 777);
}

TEST_P(TableModeTest, DeleteHidesRow) {
  auto t = Make(10);
  ASSERT_TRUE(t->Delete(core_, 3));
  std::vector<uint8_t> out(16);
  EXPECT_FALSE(t->ReadRow(core_, 3, out.data()));
  EXPECT_FALSE(t->Delete(core_, 3));
  EXPECT_TRUE(t->ReadRow(core_, 4, out.data()));
}

TEST_P(TableModeTest, RowAddressesAreStriddenAndDistinct) {
  auto t = Make(100);
  EXPECT_EQ(t->RowAddress(1) - t->RowAddress(0), 64u);
  EXPECT_EQ(t->RowAddress(99) - t->RowAddress(98), 64u);
}

TEST_P(TableModeTest, OutOfRangeRowFails) {
  auto t = Make(10);
  std::vector<uint8_t> out(16);
  EXPECT_FALSE(t->ReadRow(core_, 10, out.data()));
}

TEST_P(TableModeTest, GeneratorRowOffsetShiftsContent) {
  TableOptions opts;
  opts.row_stride = 64;
  opts.generator_row_offset = 500;
  if (GetParam()) opts.max_resident_bytes = 1;
  auto t = CreateTable("t", TwoLongColumns(), 10, opts);
  std::vector<uint8_t> row(16);
  ASSERT_TRUE(t->ReadRow(core_, 0, row.data()));
  EXPECT_EQ(t->schema().GetLong(row.data(), 0), 500);
}

INSTANTIATE_TEST_SUITE_P(HeapAndSparse, TableModeTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Sparse" : "Heap";
                         });

TEST(TableFactoryTest, PicksSparseAboveResidentBudget) {
  TableOptions opts;
  opts.row_stride = 1 << 20;  // 1MB per row
  opts.max_resident_bytes = 4 << 20;
  auto t = CreateTable("big", TwoLongColumns(), 1000, opts);
  // A sparse table spreads rows over the synthetic address range
  // [2^44, 2^46); real heap mappings live above it on x86-64 Linux.
  EXPECT_GE(t->RowAddress(0), 1ULL << 44);
  EXPECT_LT(t->RowAddress(0), 1ULL << 46);
}

TEST(TableFactoryTest, PicksHeapWithinBudget) {
  TableOptions opts;
  opts.row_stride = 64;
  auto t = CreateTable("small", TwoLongColumns(), 1000, opts);
  const uint64_t addr = t->RowAddress(0);
  // Real memory: outside the synthetic sparse range.
  EXPECT_TRUE(addr < (1ULL << 44) || addr >= (1ULL << 46));
}

TEST(TableTest, StringSchemaGeneratesUniqueEarlyDivergingKeys) {
  // String keys carry the row id in their leading bytes (comparisons
  // early-exit) and are unique across rows.
  TableOptions opts;
  auto t = CreateTable("s", TwoStringColumns(), 100, opts);
  std::vector<uint8_t> a(100), b(100);
  mcsim::MachineSim machine(NoTlb());
  ASSERT_TRUE(t->ReadRow(&machine.core(0), 7, a.data()));
  ASSERT_TRUE(t->ReadRow(&machine.core(0), 70, b.data()));
  EXPECT_NE(0, std::memcmp(a.data(), b.data(), kStringBytes));
  EXPECT_EQ(a[0], '7');
  EXPECT_EQ(b[0], '7');
  EXPECT_EQ(b[1], '0');
  EXPECT_EQ(a[1], 'a');
}

}  // namespace
}  // namespace imoltp::storage
