#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mcsim/machine.h"
#include "txn/lock_manager.h"
#include "txn/log_manager.h"
#include "txn/mvcc.h"
#include "txn/partition.h"

namespace imoltp::txn {
namespace {

mcsim::MachineConfig NoTlb() {
  mcsim::MachineConfig c;
  c.model_tlb = false;
  return c;
}

class TxnTest : public ::testing::Test {
 protected:
  TxnTest() : machine_(NoTlb()), core_(&machine_.core(0)) {}
  mcsim::MachineSim machine_;
  mcsim::CoreSim* core_;
};

// ---------------------------------------------------------------------------
// LockManager
// ---------------------------------------------------------------------------

using LockTest = TxnTest;

TEST_F(LockTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(core_, 1, 100, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(core_, 2, 100, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Holds(1, 100));
  EXPECT_TRUE(lm.Holds(2, 100));
}

TEST_F(LockTest, ExclusiveConflictsWithShared) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(core_, 1, 100, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(core_, 2, 100, LockMode::kExclusive).IsAborted());
}

TEST_F(LockTest, SharedConflictsWithExclusive) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(core_, 1, 100, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(core_, 2, 100, LockMode::kShared).IsAborted());
}

TEST_F(LockTest, ReacquisitionIsIdempotent) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(core_, 1, 100, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(core_, 1, 100, LockMode::kShared).ok());
  EXPECT_EQ(lm.ActiveLocks(), 1u);
}

TEST_F(LockTest, SoleHolderCanUpgrade) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(core_, 1, 100, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(core_, 1, 100, LockMode::kExclusive).ok());
  // Now exclusive: another shared must conflict.
  EXPECT_TRUE(lm.Acquire(core_, 2, 100, LockMode::kShared).IsAborted());
}

TEST_F(LockTest, UpgradeWithOtherSharersFails) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(core_, 1, 100, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(core_, 2, 100, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(core_, 1, 100, LockMode::kExclusive).IsAborted());
}

TEST_F(LockTest, ReleaseAllFreesEverything) {
  LockManager lm;
  for (uint64_t obj = 0; obj < 20; ++obj) {
    ASSERT_TRUE(lm.Acquire(core_, 1, obj, LockMode::kExclusive).ok());
  }
  EXPECT_EQ(lm.ActiveLocks(), 20u);
  lm.ReleaseAll(core_, 1);
  EXPECT_EQ(lm.ActiveLocks(), 0u);
  EXPECT_TRUE(lm.Acquire(core_, 2, 5, LockMode::kExclusive).ok());
}

TEST_F(LockTest, ReleasePreservesOtherHoldersLocks) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(core_, 1, 100, LockMode::kShared).ok());
  ASSERT_TRUE(lm.Acquire(core_, 2, 100, LockMode::kShared).ok());
  lm.ReleaseAll(core_, 1);
  EXPECT_FALSE(lm.Holds(1, 100));
  EXPECT_TRUE(lm.Holds(2, 100));
  EXPECT_EQ(lm.ActiveLocks(), 1u);
}

TEST_F(LockTest, DistinctObjectsDoNotConflict) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(core_, 1, 100, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(core_, 2, 101, LockMode::kExclusive).ok());
}

TEST_F(LockTest, ManyObjectsAcrossBuckets) {
  LockManager lm(16);  // tiny table: force chains
  for (uint64_t obj = 0; obj < 500; ++obj) {
    ASSERT_TRUE(lm.Acquire(core_, 1, obj * 7919, LockMode::kShared).ok());
  }
  EXPECT_EQ(lm.ActiveLocks(), 500u);
  EXPECT_TRUE(lm.Holds(1, 499 * 7919));
  lm.ReleaseAll(core_, 1);
  EXPECT_EQ(lm.ActiveLocks(), 0u);
}

// ---------------------------------------------------------------------------
// MvccManager
// ---------------------------------------------------------------------------

using MvccTest = TxnTest;

std::vector<uint8_t> Image(uint8_t fill) {
  return std::vector<uint8_t>(16, fill);
}

TEST_F(MvccTest, CommitReturnsStagedWrites) {
  MvccManager mvcc;
  const uint64_t t = mvcc.Begin(core_);
  auto next = Image(2);
  auto prior = Image(1);
  ASSERT_TRUE(mvcc.StageWrite(core_, t, 0, 5, next.data(), 16,
                              prior.data())
                  .ok());
  std::vector<MvccManager::StagedWrite> installs;
  ASSERT_TRUE(mvcc.Commit(core_, t, &installs).ok());
  ASSERT_EQ(installs.size(), 1u);
  EXPECT_EQ(installs[0].table_id, 0u);
  EXPECT_EQ(installs[0].row, 5u);
  EXPECT_EQ(installs[0].data, next);
}

TEST_F(MvccTest, WriteWriteConflictAborts) {
  MvccManager mvcc;
  const uint64_t t1 = mvcc.Begin(core_);
  const uint64_t t2 = mvcc.Begin(core_);
  auto img = Image(1);
  ASSERT_TRUE(
      mvcc.StageWrite(core_, t1, 0, 5, img.data(), 16, img.data()).ok());
  EXPECT_TRUE(mvcc.StageWrite(core_, t2, 0, 5, img.data(), 16, img.data())
                  .IsAborted());
}

TEST_F(MvccTest, AbortClearsPendingMarker) {
  MvccManager mvcc;
  const uint64_t t1 = mvcc.Begin(core_);
  auto img = Image(1);
  ASSERT_TRUE(
      mvcc.StageWrite(core_, t1, 0, 5, img.data(), 16, img.data()).ok());
  mvcc.Abort(core_, t1);
  const uint64_t t2 = mvcc.Begin(core_);
  EXPECT_TRUE(
      mvcc.StageWrite(core_, t2, 0, 5, img.data(), 16, img.data()).ok());
}

TEST_F(MvccTest, ReaderValidationFailsWhenVersionMoves) {
  MvccManager mvcc;
  const uint64_t reader = mvcc.Begin(core_);
  std::vector<uint8_t> image;
  mvcc.Read(core_, reader, 0, 5, &image);  // observes version ts 0

  const uint64_t writer = mvcc.Begin(core_);
  auto next = Image(2);
  auto prior = Image(1);
  ASSERT_TRUE(mvcc.StageWrite(core_, writer, 0, 5, next.data(), 16,
                              prior.data())
                  .ok());
  std::vector<MvccManager::StagedWrite> installs;
  ASSERT_TRUE(mvcc.Commit(core_, writer, &installs).ok());

  EXPECT_TRUE(mvcc.Commit(core_, reader, &installs).IsAborted());
}

TEST_F(MvccTest, SnapshotReaderSeesOldImage) {
  MvccManager mvcc;
  const uint64_t reader = mvcc.Begin(core_);  // snapshot before write

  const uint64_t writer = mvcc.Begin(core_);
  auto next = Image(2);
  auto prior = Image(1);
  ASSERT_TRUE(mvcc.StageWrite(core_, writer, 0, 5, next.data(), 16,
                              prior.data())
                  .ok());
  std::vector<MvccManager::StagedWrite> installs;
  ASSERT_TRUE(mvcc.Commit(core_, writer, &installs).ok());

  std::vector<uint8_t> image;
  ASSERT_TRUE(mvcc.Read(core_, reader, 0, 5, &image));
  EXPECT_EQ(image.size(), 16u);  // served from the version chain
  EXPECT_EQ(image[0], 1);        // the prior image
}

TEST_F(MvccTest, FreshReaderSeesTableContent) {
  MvccManager mvcc;
  const uint64_t writer = mvcc.Begin(core_);
  auto next = Image(2);
  auto prior = Image(1);
  ASSERT_TRUE(mvcc.StageWrite(core_, writer, 0, 5, next.data(), 16,
                              prior.data())
                  .ok());
  std::vector<MvccManager::StagedWrite> installs;
  ASSERT_TRUE(mvcc.Commit(core_, writer, &installs).ok());

  const uint64_t reader = mvcc.Begin(core_);  // snapshot after commit
  std::vector<uint8_t> image;
  EXPECT_FALSE(mvcc.Read(core_, reader, 0, 5, &image));
}

TEST_F(MvccTest, ReadOnlyTransactionCommits) {
  MvccManager mvcc;
  const uint64_t t = mvcc.Begin(core_);
  std::vector<uint8_t> image;
  mvcc.Read(core_, t, 0, 1, &image);
  mvcc.Read(core_, t, 0, 2, &image);
  std::vector<MvccManager::StagedWrite> installs;
  EXPECT_TRUE(mvcc.Commit(core_, t, &installs).ok());
  EXPECT_TRUE(installs.empty());
}

TEST_F(MvccTest, TimestampsAdvanceOnCommitOnly) {
  MvccManager mvcc;
  const uint64_t c0 = mvcc.clock();
  const uint64_t t = mvcc.Begin(core_);
  EXPECT_EQ(mvcc.clock(), c0);
  auto img = Image(1);
  ASSERT_TRUE(
      mvcc.StageWrite(core_, t, 0, 1, img.data(), 16, img.data()).ok());
  std::vector<MvccManager::StagedWrite> installs;
  ASSERT_TRUE(mvcc.Commit(core_, t, &installs).ok());
  EXPECT_EQ(mvcc.clock(), c0 + 1);
}

// ---------------------------------------------------------------------------
// LogManager
// ---------------------------------------------------------------------------

using LogTest = TxnTest;

TEST_F(LogTest, CountsRecordsAndBytes) {
  LogManager log;
  const uint8_t payload[32] = {0};
  log.LogUpdate(core_, 1, 0, 100, 1, payload, 32);
  log.LogCommit(core_, 1);
  EXPECT_EQ(log.records(), 2u);
  EXPECT_EQ(log.bytes_logged(), (32u + 32u) + 32u);
}

TEST_F(LogTest, BufferWrapsViaAsynchronousFlush) {
  LogManager log(1024);
  const uint8_t payload[100] = {0};
  for (int i = 0; i < 50; ++i) {
    log.LogUpdate(core_, 1, 0, i, 1, payload, 100);
  }
  EXPECT_GT(log.flushes(), 0u);
  EXPECT_EQ(log.records(), 50u);
}

TEST_F(LogTest, SequentialWritesHaveGoodLocality) {
  LogManager log(1 << 20);
  const uint8_t payload[28] = {0};
  for (int i = 0; i < 100; ++i) {
    log.LogUpdate(core_, 1, 0, i, 1, payload, 28);
  }
  // 100 records of 64 aligned bytes occupy 100 sequential lines; the
  // compulsory-miss count is bounded by that footprint.
  EXPECT_LE(core_->counters().misses.l1d, 101u);
}

TEST_F(LogTest, StableLogRetainsRecordsInLsnOrder) {
  LogManager log;
  const uint8_t payload[8] = {7};
  const uint8_t key[8] = {9};
  log.Append(core_, LogOp::kInsert, 42, 3, 17, -1, payload, 8, key, 8,
             1);
  log.LogCommit(core_, 42);
  const auto& records = log.stable_log();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_LT(records[0].lsn, records[1].lsn);
  EXPECT_EQ(records[0].op, LogOp::kInsert);
  EXPECT_EQ(records[0].txn_id, 42u);
  EXPECT_EQ(records[0].table, 3);
  EXPECT_EQ(records[0].row, 17u);
  EXPECT_EQ(records[0].slice, 1);
  EXPECT_EQ(records[0].payload.size(), 8u);
  EXPECT_EQ(records[0].key.size(), 8u);
  EXPECT_EQ(records[1].op, LogOp::kCommit);
}

TEST_F(LogTest, TruncateDropsRetainedRecords) {
  LogManager log;
  log.LogCommit(core_, 1);
  const uint64_t anchor = log.LogCommit(core_, 2);
  log.LogCommit(core_, 3);
  log.Truncate(anchor);
  ASSERT_EQ(log.stable_log().size(), 2u);
  EXPECT_EQ(log.stable_log()[0].lsn, anchor);
  EXPECT_EQ(log.truncated_records(), 1u);
  EXPECT_EQ(log.appended_records(), 3u);
}

TEST_F(LogTest, TruncateRecordsPositionEvenWhenLogDrainsEmpty) {
  // A fully truncated log must not look like a never-written log:
  // recovery needs the anchor LSN to know replay legitimately starts
  // past 0.
  LogManager log;
  log.LogCommit(core_, 1);
  const uint64_t last = log.LogCommit(core_, 2);
  log.Truncate(last + 1);
  EXPECT_TRUE(log.stable_log().empty());
  EXPECT_EQ(log.truncation_lsn(), last + 1);
  EXPECT_EQ(log.truncated_records(), 2u);
  // Double truncation to an older anchor is a no-op and must not move
  // the recorded position backwards.
  log.Truncate(last);
  EXPECT_EQ(log.truncation_lsn(), last + 1);
}

// ---------------------------------------------------------------------------
// PartitionManager
// ---------------------------------------------------------------------------

using PartitionTest = TxnTest;

TEST_F(PartitionTest, RangePartitioningCoversKeySpace) {
  PartitionManager pm(4);
  EXPECT_EQ(pm.PartitionOf(0, 1000), 0);
  EXPECT_EQ(pm.PartitionOf(999, 1000), 3);
  EXPECT_EQ(pm.PartitionOf(250, 1000), 1);
  EXPECT_EQ(pm.PartitionOf(500, 1000), 2);
}

TEST_F(PartitionTest, SinglePartitionChecksOwnership) {
  PartitionManager pm(2);
  EXPECT_TRUE(pm.EnterSinglePartition(core_, 0, 0).ok());
  EXPECT_TRUE(pm.EnterSinglePartition(core_, 1, 0).IsAborted());
}

TEST_F(PartitionTest, MultiPartitionClaimAndRelease) {
  PartitionManager pm(4);
  ASSERT_TRUE(pm.EnterMultiPartition(core_, 0, {0, 1, 2}).ok());
  EXPECT_TRUE(pm.EnterMultiPartition(core_, 3, {2, 3}).IsAborted());
  pm.ReleaseMultiPartition(core_, 0);
  EXPECT_TRUE(pm.EnterMultiPartition(core_, 3, {2, 3}).ok());
}

TEST_F(PartitionTest, FailedClaimReleasesPartialAcquisitions) {
  PartitionManager pm(4);
  ASSERT_TRUE(pm.EnterMultiPartition(core_, 0, {2}).ok());
  // Worker 1 claims {1, 2}: 2 is taken, so 1 must not stay claimed.
  ASSERT_TRUE(pm.EnterMultiPartition(core_, 1, {1, 2}).IsAborted());
  EXPECT_TRUE(pm.EnterMultiPartition(core_, 3, {1}).ok());
}

}  // namespace
}  // namespace imoltp::txn
