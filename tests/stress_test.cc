// Heavier randomized stress tests: cross-checking the substrates against
// reference models under long random operation sequences, and the
// workloads under multi-partition execution.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "core/microbench.h"
#include "core/tpcb.h"
#include "core/tpcc.h"
#include "index/index.h"
#include "mcsim/machine.h"
#include "txn/lock_manager.h"

namespace imoltp {
namespace {

mcsim::MachineConfig NoTlb(int cores = 1) {
  mcsim::MachineConfig c;
  c.model_tlb = false;
  c.num_cores = cores;
  return c;
}

// ---------------------------------------------------------------------------
// Lock manager vs a reference model under random traffic.
// ---------------------------------------------------------------------------

TEST(LockManagerStressTest, MatchesReferenceModel) {
  mcsim::MachineSim m(NoTlb());
  txn::LockManager lm(64);  // small table: deep chains
  Rng rng(42);

  struct RefLock {
    bool exclusive = false;
    std::vector<uint64_t> holders;
  };
  std::map<uint64_t, RefLock> ref;
  std::map<uint64_t, std::vector<uint64_t>> held_by_txn;

  auto ref_acquire = [&](uint64_t txn, uint64_t obj, bool exclusive) {
    RefLock& l = ref[obj];
    const bool holder =
        std::find(l.holders.begin(), l.holders.end(), txn) !=
        l.holders.end();
    if (holder) {
      if (exclusive && !l.exclusive) {
        if (l.holders.size() > 1) return false;
        l.exclusive = true;
      }
      return true;
    }
    if (l.holders.empty()) {
      l.exclusive = exclusive;
      l.holders.push_back(txn);
      held_by_txn[txn].push_back(obj);
      return true;
    }
    if (l.exclusive || exclusive) return false;
    l.holders.push_back(txn);
    held_by_txn[txn].push_back(obj);
    return true;
  };

  for (int step = 0; step < 20000; ++step) {
    const uint64_t txn = 1 + rng.Uniform(6);
    if (rng.Uniform(10) < 8) {
      const uint64_t obj = rng.Uniform(300);
      const bool exclusive = rng.Uniform(2) == 0;
      const bool want = ref_acquire(txn, obj, exclusive);
      const Status got =
          lm.Acquire(&m.core(0), txn, obj,
                     exclusive ? txn::LockMode::kExclusive
                               : txn::LockMode::kShared);
      ASSERT_EQ(got.ok(), want)
          << "step " << step << " txn " << txn << " obj " << obj
          << (exclusive ? " X" : " S");
    } else {
      lm.ReleaseAll(&m.core(0), txn);
      for (uint64_t obj : held_by_txn[txn]) {
        RefLock& l = ref[obj];
        l.holders.erase(
            std::remove(l.holders.begin(), l.holders.end(), txn),
            l.holders.end());
        if (l.holders.empty()) ref.erase(obj);
      }
      held_by_txn[txn].clear();
    }
  }
}

// ---------------------------------------------------------------------------
// Ordered indexes: leaf chains and scans stay consistent across heavy
// mixed traffic with many splits and deletions.
// ---------------------------------------------------------------------------

class OrderedIndexStressTest
    : public ::testing::TestWithParam<index::IndexKind> {};

TEST_P(OrderedIndexStressTest, FullScanAlwaysSortedAndComplete) {
  mcsim::MachineSim m(NoTlb());
  auto idx = index::CreateIndex(GetParam(), 8);
  Rng rng(7);
  std::map<uint64_t, uint64_t> oracle;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 2000; ++i) {
      const uint64_t k = rng.Uniform(1u << 20);
      if (rng.Uniform(3) != 0) {
        if (idx->Insert(&m.core(0), index::Key::FromUint64(k), k * 3)
                .ok()) {
          oracle[k] = k * 3;
        }
      } else {
        const bool removed =
            idx->Remove(&m.core(0), index::Key::FromUint64(k));
        ASSERT_EQ(removed, oracle.erase(k) > 0);
      }
    }
    std::vector<uint64_t> got;
    idx->Scan(&m.core(0), index::Key::FromUint64(0), oracle.size() + 10,
              &got);
    ASSERT_EQ(got.size(), oracle.size()) << "round " << round;
    size_t i = 0;
    for (const auto& [k, v] : oracle) {
      ASSERT_EQ(got[i++], v) << "round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ordered, OrderedIndexStressTest,
    ::testing::Values(index::IndexKind::kBTree8K,
                      index::IndexKind::kBTreeCacheline,
                      index::IndexKind::kBTreeCc, index::IndexKind::kArt),
    [](const ::testing::TestParamInfo<index::IndexKind>& info) {
      std::string n = index::IndexKindName(info.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

// ---------------------------------------------------------------------------
// Multi-partition workloads: every engine keeps executing correctly
// with 2 workers over 2 partitions.
// ---------------------------------------------------------------------------

class MultiPartitionWorkloadTest
    : public ::testing::TestWithParam<engine::EngineKind> {};

TEST_P(MultiPartitionWorkloadTest, MicroRunsOnBothWorkers) {
  core::MicroConfig mcfg;
  mcfg.nominal_bytes = 2 << 20;
  mcfg.read_write = true;
  mcfg.num_partitions = 2;
  core::MicroBenchmark wl(mcfg);
  mcsim::MachineSim m(NoTlb(2));
  engine::EngineOptions opts;
  opts.num_partitions = 2;
  auto engine = engine::CreateEngine(GetParam(), &m, opts);
  ASSERT_TRUE(engine->CreateDatabase(wl.Tables()).ok());
  Rng r0(1), r1(2);
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(wl.RunTransaction(engine.get(), 0, &r0).ok()) << i;
    ASSERT_TRUE(wl.RunTransaction(engine.get(), 1, &r1).ok()) << i;
  }
  EXPECT_EQ(m.core(0).counters().transactions, 150u);
  EXPECT_EQ(m.core(1).counters().transactions, 150u);
}

TEST_P(MultiPartitionWorkloadTest, TpccRunsOnBothWorkers) {
  core::TpccConfig tcfg;
  tcfg.warehouses = 2;
  tcfg.orders_per_district = 90;
  tcfg.num_partitions = 2;
  core::TpccBenchmark wl(tcfg);
  mcsim::MachineSim m(NoTlb(2));
  engine::EngineOptions opts;
  opts.num_partitions = 2;
  opts.dbms_m_index = index::IndexKind::kBTreeCc;
  auto engine = engine::CreateEngine(GetParam(), &m, opts);
  ASSERT_TRUE(engine->CreateDatabase(wl.Tables()).ok());
  Rng r0(3), r1(4);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(wl.RunTransaction(engine.get(), 0, &r0).ok()) << i;
    ASSERT_TRUE(wl.RunTransaction(engine.get(), 1, &r1).ok()) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, MultiPartitionWorkloadTest,
    ::testing::Values(engine::EngineKind::kShoreMt,
                      engine::EngineKind::kDbmsD,
                      engine::EngineKind::kVoltDb,
                      engine::EngineKind::kHyPer,
                      engine::EngineKind::kDbmsM),
    [](const ::testing::TestParamInfo<engine::EngineKind>& i) {
      std::string n = engine::EngineKindName(i.param);
      for (char& c : n) {
        if (c == '-' || c == ' ') c = '_';
      }
      return n;
    });

// ---------------------------------------------------------------------------
// TPC-B under two workers preserves money conservation per partition.
// ---------------------------------------------------------------------------

TEST(TpcbMultiWorkerTest, RunsCleanlyPartitioned) {
  core::TpcbConfig tcfg;
  tcfg.nominal_bytes = 8 << 20;
  tcfg.num_partitions = 2;
  core::TpcbBenchmark wl(tcfg);
  mcsim::MachineSim m(NoTlb(2));
  engine::EngineOptions opts;
  opts.num_partitions = 2;
  auto engine =
      engine::CreateEngine(engine::EngineKind::kVoltDb, &m, opts);
  ASSERT_TRUE(engine->CreateDatabase(wl.Tables()).ok());
  Rng r0(5), r1(6);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(wl.RunTransaction(engine.get(), 0, &r0).ok());
    ASSERT_TRUE(wl.RunTransaction(engine.get(), 1, &r1).ok());
  }
}

}  // namespace
}  // namespace imoltp
