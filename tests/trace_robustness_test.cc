// Hostile-input handling: a TraceReader must reject any damaged file —
// truncated anywhere, bit-flipped anywhere, wrong magic or version —
// with a clean Status. No input may crash, hang, or hand the replay
// driver out-of-range ids (ASAN in CI backs the "no UB" half).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/experiment.h"
#include "core/microbench.h"
#include "fault/fault_injector.h"
#include "trace/format.h"
#include "trace/reader.h"
#include "trace/record.h"
#include "trace/replay.h"

namespace imoltp::trace {
namespace {

std::string TmpPath(const std::string& name) {
  // Per-process suffix: ctest -j runs each discovered test in its own
  // process, and every process re-records the suite fixture — a shared
  // path would let two processes race on the same file.
  return testing::TempDir() + "imoltp_trace_robust_" + name + "_" +
         std::to_string(static_cast<long>(::getpid())) + ".trace";
}

/// Records one small real trace and hands tests its raw bytes.
class TraceRobustnessTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    path_ = new std::string(TmpPath("base"));
    // Small database: warm-up events dominate trace size, and the
    // bit-flip sweep below re-decodes a prefix of the file per flip.
    core::MicroConfig mcfg;
    mcfg.nominal_bytes = 64 << 10;
    core::MicroBenchmark wl(mcfg);
    core::ExperimentConfig cfg;
    cfg.engine = engine::EngineKind::kVoltDb;
    cfg.warmup_txns = 5;
    cfg.measure_txns = 15;
    cfg.seed = 7;
    RecordResult live;
    ASSERT_TRUE(RecordExperiment(cfg, &wl, *path_, mcfg.nominal_bytes, 0,
                                 0, &live)
                    .ok());

    std::FILE* f = std::fopen(path_->c_str(), "rb");
    ASSERT_NE(f, nullptr);
    bytes_ = new std::string;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes_->append(buf, n);
    }
    std::fclose(f);
    ASSERT_GT(bytes_->size(), 64u);
  }

  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete path_;
    delete bytes_;
    path_ = nullptr;
    bytes_ = nullptr;
  }

  /// Fully consumes `data` through a TraceReader, returning the first
  /// non-OK status (or OK if the whole stream decodes). Must never
  /// crash.
  static Status DecodeAll(std::string data) {
    TraceReader reader;
    Status s = reader.OpenBuffer(
        std::make_shared<const std::string>(std::move(data)));
    if (s.ok()) {
      TraceEvent ev;
      bool done = false;
      while (!done) {
        s = reader.Next(&ev, &done);
        if (!s.ok()) break;
      }
    }
    return s;
  }

  static std::string* path_;
  static std::string* bytes_;
};

std::string* TraceRobustnessTest::path_ = nullptr;
std::string* TraceRobustnessTest::bytes_ = nullptr;

TEST_F(TraceRobustnessTest, IntactFileDecodes) {
  ASSERT_TRUE(DecodeAll(*bytes_).ok());
}

TEST_F(TraceRobustnessTest, EmptyFileRejected) {
  EXPECT_FALSE(DecodeAll("").ok());
}

TEST_F(TraceRobustnessTest, MissingFileRejected) {
  TraceReader reader;
  const Status s = reader.Open(TmpPath("no_such_file"));
  EXPECT_FALSE(s.ok());
}

TEST_F(TraceRobustnessTest, BadMagicRejected) {
  std::string data = *bytes_;
  data[0] = 'X';
  const Status s = DecodeAll(data);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("magic"), std::string::npos);
}

TEST_F(TraceRobustnessTest, VersionMismatchRejected) {
  std::string data = *bytes_;
  data[8] = static_cast<char>(kTraceFormatVersion + 1);
  const Status s = DecodeAll(data);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("version"), std::string::npos);
}

TEST_F(TraceRobustnessTest, TruncationAtEveryRegionRejected) {
  // Cutting the file anywhere — header, block boundary, mid-record,
  // even one byte short — must produce a clean error, because the
  // end-of-stream record can no longer be reached intact.
  const size_t size = bytes_->size();
  std::vector<size_t> cuts = {1,        7,        8,         11,
                              19,       20,       size / 7,  size / 3,
                              size / 2, size - 9, size - 2,  size - 1};
  for (size_t cut : cuts) {
    ASSERT_LT(cut, size);
    EXPECT_FALSE(DecodeAll(bytes_->substr(0, cut)).ok())
        << "truncation at " << cut << " of " << size << " decoded";
  }
}

TEST_F(TraceRobustnessTest, BitFlipsAnywhereRejectedOrHarmless) {
  // Flip one bit every ~97 bytes across the whole file (coarser on big
  // traces — each flip re-decodes up to the damaged block, so a dense
  // sweep is quadratic). Every mutation must fail cleanly: flips land
  // in magic, version, a length, a CRC field, or CRC-protected bytes.
  const size_t step = std::max<size_t>(97, bytes_->size() / 512);
  size_t rejected = 0;
  size_t trials = 0;
  for (size_t pos = 0; pos < bytes_->size(); pos += step) {
    std::string data = *bytes_;
    data[pos] = static_cast<char>(data[pos] ^ (1 << (pos % 8)));
    if (data == *bytes_) continue;  // XOR was a no-op (cannot happen)
    ++trials;
    if (!DecodeAll(data).ok()) ++rejected;
  }
  EXPECT_GT(trials, 100u);
  EXPECT_EQ(rejected, trials);
}

TEST_F(TraceRobustnessTest, TrailingGarbageRejected) {
  EXPECT_FALSE(DecodeAll(*bytes_ + std::string(16, '\x5A')).ok());
}

TEST_F(TraceRobustnessTest, ReplayOfDamagedFileFailsCleanly) {
  // End-to-end: the replay driver surfaces reader errors as Status.
  const std::string path = TmpPath("replay_damaged");
  std::string data = *bytes_;
  data[data.size() / 2] ^= 0x10;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);

  ReplayResult result;
  EXPECT_FALSE(ReplayTraceRecorded(path, &result).ok());
  std::remove(path.c_str());
}

TEST_F(TraceRobustnessTest, DoubleOpenRejected) {
  TraceReader reader;
  ASSERT_TRUE(reader.Open(*path_).ok());
  EXPECT_FALSE(reader.Open(*path_).ok());
}

TEST_F(TraceRobustnessTest, InjectedDeviceReadErrorFailsCleanly) {
  // The fault injector's trace.read_error point simulates a device
  // that dies mid-read on an otherwise-intact file: the reader must
  // surface it as the same clean corruption Status as real damage.
  fault::FaultInjector inj(21);
  inj.Arm(fault::kTraceReadError, {0.0, 2});
  TraceReader reader;
  reader.set_fault_injector(&inj);
  ASSERT_TRUE(reader.Open(*path_).ok());
  TraceEvent ev;
  bool done = false;
  Status s = Status::Ok();
  while (!done) {
    s = reader.Next(&ev, &done);
    if (!s.ok()) break;
  }
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("injected device read error"),
            std::string::npos)
      << s.ToString();

  // An attached-but-unarmed injector must not perturb decoding.
  fault::FaultInjector idle(21);
  TraceReader clean;
  clean.set_fault_injector(&idle);
  ASSERT_TRUE(clean.Open(*path_).ok());
  done = false;
  while (!done) {
    ASSERT_TRUE(clean.Next(&ev, &done).ok());
  }
}

}  // namespace
}  // namespace imoltp::trace
