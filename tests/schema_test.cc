#include "storage/schema.h"

#include <gtest/gtest.h>

#include "mcsim/code_region.h"

namespace imoltp::storage {
namespace {

TEST(SchemaTest, OffsetsArePacked) {
  const Schema s({ColumnType::kLong, ColumnType::kString,
                  ColumnType::kLong});
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.column_offset(0), 0u);
  EXPECT_EQ(s.column_offset(1), 8u);
  EXPECT_EQ(s.column_offset(2), 8u + kStringBytes);
  EXPECT_EQ(s.row_bytes(), 16u + kStringBytes);
}

TEST(SchemaTest, LongRoundTrip) {
  const Schema s = TwoLongColumns();
  uint8_t row[16];
  s.SetLong(row, 0, -12345);
  s.SetLong(row, 1, INT64_MAX);
  EXPECT_EQ(s.GetLong(row, 0), -12345);
  EXPECT_EQ(s.GetLong(row, 1), INT64_MAX);
}

TEST(SchemaTest, ColumnWidths) {
  EXPECT_EQ(ColumnWidth(ColumnType::kLong), 8u);
  EXPECT_EQ(ColumnWidth(ColumnType::kString), 50u);
  const Schema s = TwoStringColumns();
  EXPECT_EQ(s.row_bytes(), 100u);
  EXPECT_EQ(s.column_width(0), kStringBytes);
}

TEST(SchemaTest, ColumnPtrAddressesMatchOffsets) {
  const Schema s({ColumnType::kString, ColumnType::kLong});
  uint8_t row[64];
  EXPECT_EQ(s.ColumnPtr(row, 0), row);
  EXPECT_EQ(s.ColumnPtr(row, 1), row + kStringBytes);
}

}  // namespace
}  // namespace imoltp::storage

namespace imoltp::mcsim {
namespace {

TEST(CodeSpaceTest, RegionsDoNotOverlap) {
  CodeSpace space;
  const CodeRegion a = space.Define(kNoModule, 4096, 4096, 10, 0);
  const CodeRegion b = space.Define(kNoModule, 8192, 8192, 10, 0);
  EXPECT_GE(b.base_line, a.base_line + a.total_lines);
}

TEST(CodeSpaceTest, TouchedClampedToTotal) {
  CodeSpace space;
  const CodeRegion r = space.Define(kNoModule, 1024, 4096, 10, 0);
  EXPECT_EQ(r.touched_lines, r.total_lines);
}

TEST(CodeSpaceTest, LineCountsRoundUp) {
  CodeSpace space;
  const CodeRegion r = space.Define(kNoModule, 65, 65, 10, 0);
  EXPECT_EQ(r.total_lines, 2u);
}

TEST(CodeSpaceTest, CodeLivesAboveDataAddressSpace) {
  CodeSpace space;
  const CodeRegion r = space.Define(kNoModule, 64, 64, 1, 0);
  // Code line addresses sit far above any byte address >> 6 a real
  // pointer or sparse table (< 2^46) can produce.
  EXPECT_GE(r.base_line, 1ULL << 40);
}

TEST(ModuleRegistryTest, RegistersAndDescribes) {
  ModuleRegistry registry;
  const ModuleId a = registry.Register("parser", false);
  const ModuleId b = registry.Register("btree", true);
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.info(a).name, "parser");
  EXPECT_FALSE(registry.info(a).inside_engine);
  EXPECT_TRUE(registry.info(b).inside_engine);
  EXPECT_EQ(registry.info(kNoModule).name, "<none>");
}

}  // namespace
}  // namespace imoltp::mcsim
