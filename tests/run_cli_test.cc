#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/report_json.h"
#include "tools/imoltp_cli.h"

namespace imoltp::tools {
namespace {

// ----------------------------------------------------------- ParseSize

TEST(ParseSizeTest, AcceptsSuffixedSizes) {
  EXPECT_EQ(ParseSize("10MB"), 10ULL << 20);
  EXPECT_EQ(ParseSize("1GB"), 1ULL << 30);
  EXPECT_EQ(ParseSize("512KB"), 512ULL << 10);
  EXPECT_EQ(ParseSize("100gb"), 100ULL << 30);  // case-insensitive
  EXPECT_EQ(ParseSize("2.5MB"), (5ULL << 20) / 2);
}

TEST(ParseSizeTest, BareNumberMeansMegabytes) {
  EXPECT_EQ(ParseSize("16"), 16ULL << 20);
}

TEST(ParseSizeTest, RejectsGarbage) {
  EXPECT_EQ(ParseSize("abc"), 0u);
  EXPECT_EQ(ParseSize(""), 0u);
  EXPECT_EQ(ParseSize(nullptr), 0u);
  EXPECT_EQ(ParseSize("0MB"), 0u);
  EXPECT_EQ(ParseSize("-5MB"), 0u);
  EXPECT_EQ(ParseSize("10XB"), 0u);
  EXPECT_EQ(ParseSize("10MBextra"), 0u);
  EXPECT_EQ(ParseSize("MB"), 0u);
}

// ----------------------------------------------------- ParseCommandLine

std::pair<bool, std::string> Parse(std::vector<const char*> args,
                                   Flags* flags) {
  args.insert(args.begin(), "imoltp_run");
  std::string error;
  const bool ok =
      ParseCommandLine(static_cast<int>(args.size()),
                       const_cast<char* const*>(args.data()), flags,
                       &error);
  return {ok, error};
}

TEST(ParseCommandLineTest, ParsesFullFlagSet) {
  Flags flags;
  auto [ok, error] = Parse(
      {"--engine=hyper", "--workload=tpcc", "--db=1GB", "--rows=10",
       "--warehouses=8", "--workers=4", "--txns=500", "--warmup=100",
       "--index=btree", "--no-compilation", "--seed=9", "--csv-header",
       "--json=out.json"},
      &flags);
  EXPECT_TRUE(ok) << error;
  EXPECT_EQ(flags.engine, "hyper");
  EXPECT_EQ(flags.workload, "tpcc");
  EXPECT_EQ(flags.db_bytes, 1ULL << 30);
  EXPECT_EQ(flags.rows, 10);
  EXPECT_EQ(flags.warehouses, 8);
  EXPECT_EQ(flags.workers, 4);
  EXPECT_EQ(flags.txns, 500u);
  EXPECT_EQ(flags.warmup, 100u);
  EXPECT_EQ(flags.index, "btree");
  EXPECT_FALSE(flags.compilation);
  EXPECT_EQ(flags.seed, 9u);
  EXPECT_TRUE(flags.csv);
  EXPECT_TRUE(flags.csv_header);
  EXPECT_EQ(flags.json_path, "out.json");
}

TEST(ParseCommandLineTest, UnknownFlagFails) {
  Flags flags;
  auto [ok, error] = Parse({"--frobnicate=yes"}, &flags);
  EXPECT_FALSE(ok);
  EXPECT_NE(error.find("--frobnicate"), std::string::npos);
}

TEST(ParseCommandLineTest, BadSizeFails) {
  Flags flags;
  auto [ok, error] = Parse({"--db=abc"}, &flags);
  EXPECT_FALSE(ok);
  EXPECT_NE(error.find("--db"), std::string::npos);
}

TEST(ParseCommandLineTest, NonNumericWorkersFails) {
  Flags flags;
  auto [ok, error] = Parse({"--workers=lots"}, &flags);
  EXPECT_FALSE(ok);
  EXPECT_NE(error.find("--workers"), std::string::npos);
}

TEST(ParseCommandLineTest, EmptyJsonPathFails) {
  Flags flags;
  auto [ok, error] = Parse({"--json="}, &flags);
  EXPECT_FALSE(ok);
}

TEST(ParseCommandLineTest, ParsesSamplingFlags) {
  Flags flags;
  auto [ok, error] =
      Parse({"--sample-every=5000", "--timeline-out=run.json"}, &flags);
  EXPECT_TRUE(ok) << error;
  EXPECT_EQ(flags.sample_every, 5000u);
  EXPECT_EQ(flags.timeline_out, "run.json");
}

TEST(ParseCommandLineTest, RejectsBadSampleEvery) {
  // Zero means "off" and is spelled by omitting the flag; a malformed
  // period must not silently disable sampling.
  for (const char* arg :
       {"--sample-every=0", "--sample-every=abc", "--sample-every=",
        "--sample-every=5k"}) {
    Flags flags;
    auto [ok, error] = Parse({arg}, &flags);
    EXPECT_FALSE(ok) << arg;
    EXPECT_NE(error.find("--sample-every"), std::string::npos) << arg;
  }
}

TEST(ParseCommandLineTest, EmptyTimelineOutFails) {
  Flags flags;
  auto [ok, error] = Parse({"--timeline-out="}, &flags);
  EXPECT_FALSE(ok);
}

TEST(BuildExperimentTest, SamplerPeriodFollowsFlags) {
  // Explicit period wins; a timeline request defaults the period on;
  // neither leaves sampling off.
  struct Case {
    uint64_t sample_every;
    const char* timeline_out;
    uint64_t want;
  };
  for (const Case& c : {Case{5000, "t.json", 5000},
                        Case{0, "t.json", 20000},
                        Case{5000, "", 5000},
                        Case{0, "", 0}}) {
    Flags flags;
    flags.sample_every = c.sample_every;
    flags.timeline_out = c.timeline_out;
    core::ExperimentConfig cfg;
    std::unique_ptr<core::Workload> workload;
    std::string error;
    ASSERT_TRUE(BuildExperiment(flags, &cfg, &workload, &error))
        << error;
    EXPECT_EQ(cfg.sampler.every_cycles, c.want)
        << "sample_every=" << c.sample_every << " timeline_out='"
        << c.timeline_out << "'";
  }
}

TEST(ParseEngineTest, AllFiveEnginesParse) {
  engine::EngineKind kind;
  for (const char* name :
       {"shore-mt", "dbms-d", "voltdb", "hyper", "dbms-m"}) {
    EXPECT_TRUE(ParseEngine(name, &kind)) << name;
  }
  EXPECT_FALSE(ParseEngine("oracle", &kind));
}

// ----------------------------------------------- CSV <-> JSON parity

std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> cells;
  size_t start = 0;
  while (true) {
    const size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      cells.push_back(line.substr(start));
      break;
    }
    cells.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return cells;
}

// Every CSV column must exist in the JSON report at its mapped path
// with the same value — this is the test that keeps the two output
// formats from silently drifting apart.
TEST(CsvJsonParityTest, EveryCsvFieldHasAMatchingJsonPath) {
  Flags flags;
  flags.engine = "voltdb";
  flags.workload = "micro";
  flags.db_bytes = 10ULL << 20;
  flags.rows = 3;
  flags.workers = 2;

  mcsim::WindowReport report;
  report.num_workers = 2;
  report.ipc = 1.2345;
  report.instructions_per_txn = 4567.8;
  report.cycles_per_txn = 9876.5;
  for (int i = 0; i < 6; ++i) {
    report.stalls_per_kinstr.stalls[i] = 10.0 * (i + 1) + 0.25;
  }

  obs::RunInfo info;
  info.engine = flags.engine;
  info.workload = flags.workload;
  info.db_bytes = flags.db_bytes;
  info.rows = flags.rows;
  info.workers = flags.workers;
  const std::string json =
      obs::RunReportToJson(info, report, mcsim::CycleModelParams{},
                           /*latency=*/nullptr, /*spans=*/nullptr);
  auto doc = obs::ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  const std::vector<std::string> header = SplitCsv(CsvHeader());
  const std::vector<std::string> row = SplitCsv(CsvRow(flags, report));
  ASSERT_EQ(header.size(), static_cast<size_t>(kNumCsvFields));
  ASSERT_EQ(row.size(), static_cast<size_t>(kNumCsvFields));

  for (int i = 0; i < kNumCsvFields; ++i) {
    SCOPED_TRACE(kCsvFields[i].name);
    EXPECT_EQ(header[i], kCsvFields[i].name);
    const obs::JsonValue* node =
        doc.value().FindPath(kCsvFields[i].json_path);
    ASSERT_NE(node, nullptr)
        << "CSV column " << kCsvFields[i].name
        << " has no JSON counterpart at " << kCsvFields[i].json_path;
    if (node->is_string()) {
      EXPECT_EQ(row[i], node->string);
    } else {
      ASSERT_TRUE(node->is_number());
      const double csv_value = std::strtod(row[i].c_str(), nullptr);
      // CSV rounds to fixed decimals; 0.5 absolute covers every format.
      EXPECT_NEAR(csv_value, node->number, 0.5);
    }
  }
}

}  // namespace
}  // namespace imoltp::tools
