#include <gtest/gtest.h>

#include "mcsim/machine.h"

namespace imoltp::mcsim {
namespace {

MachineConfig WithPrefetcher(bool on) {
  MachineConfig c;
  c.model_tlb = false;
  c.model_prefetcher = on;
  return c;
}

TEST(PrefetcherTest, SequentialStreamPrefetchesIntoL2) {
  MachineSim m(WithPrefetcher(true));
  CoreSim& core = m.core(0);
  // A long sequential sweep: after the stream is detected, lines land
  // in L2 before demand touches them, so L2D misses stay far below the
  // line count.
  for (uint64_t i = 0; i < 4096; ++i) {
    core.Read((1ULL << 30) + i * 64, 8);
  }
  EXPECT_GT(core.prefetches_issued(), 1000u);
  EXPECT_LT(core.counters().misses.l2d,
            core.counters().misses.l1d / 2);
}

TEST(PrefetcherTest, RandomProbesGainNothing) {
  MachineSim on(WithPrefetcher(true));
  MachineSim off(WithPrefetcher(false));
  uint64_t state = 12345;
  auto next = [&] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return (1ULL << 30) + (state % (1ULL << 28));
  };
  for (int i = 0; i < 20000; ++i) {
    const uint64_t addr = next();
    on.core(0).Read(addr, 8);
  }
  state = 12345;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t addr = next();
    off.core(0).Read(addr, 8);
  }
  // Random lines almost never extend a sequence: within a few percent.
  const double a =
      static_cast<double>(on.core(0).counters().misses.llc_d);
  const double b =
      static_cast<double>(off.core(0).counters().misses.llc_d);
  EXPECT_NEAR(a, b, 0.05 * b);
}

TEST(PrefetcherTest, DisabledByDefault) {
  MachineConfig c;
  EXPECT_FALSE(c.model_prefetcher);
  MachineSim m(c);
  for (uint64_t i = 0; i < 256; ++i) {
    m.core(0).Read((1ULL << 30) + i * 64, 8);
  }
  EXPECT_EQ(m.core(0).prefetches_issued(), 0u);
}

TEST(CpiFloorTest, RaisesCheapRegionsOnly) {
  MachineConfig c;
  c.model_tlb = false;
  c.cycle.cpi_floor = 1.0;
  MachineSim m(c);
  CoreSim& core = m.core(0);
  // Compiled-quality code (0.45 CPI) is floored to 1.0...
  CodeRegion fast = m.code_space().Define(kNoModule, 64, 64, 1000, 0.0,
                                          /*cpi=*/0.45);
  core.ExecuteRegion(fast);
  EXPECT_NEAR(core.counters().base_cycles, 1000.0, 0.5);
  // ...and legacy code above the floor is unchanged.
  CodeRegion slow = m.code_space().Define(kNoModule, 64, 64, 1000, 0.0,
                                          /*cpi=*/1.2);
  core.ExecuteRegion(slow);
  EXPECT_NEAR(core.counters().base_cycles, 1000.0 + 1200.0, 0.5);
}

TEST(CpiFloorTest, ZeroFloorIsIdentity) {
  MachineConfig c;
  c.model_tlb = false;
  MachineSim m(c);
  CodeRegion fast = m.code_space().Define(kNoModule, 64, 64, 1000, 0.0,
                                          /*cpi=*/0.45);
  m.core(0).ExecuteRegion(fast);
  EXPECT_NEAR(m.core(0).counters().base_cycles, 450.0, 0.5);
}

}  // namespace
}  // namespace imoltp::mcsim
