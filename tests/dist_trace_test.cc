// Tests for the distributed-tracing layer (src/dist/txn_trace.h):
// deterministic trace ids, the zero-observer contract (same-seed runs
// fingerprint bit-identical with tracing off, on, or sampled),
// critical-path arithmetic (the recorded critical path equals the sum
// of its recorded components, and the slowest participant chain
// gates a multi-home transaction), orphan accounting under node-death
// chaos, the schema-v8 `cluster.tracing` JSON section, and the
// whole-cluster Perfetto export.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/seed.h"
#include "dist/cluster.h"
#include "dist/cluster_json.h"
#include "dist/cluster_timeline.h"
#include "dist/txn_trace.h"
#include "obs/json.h"
#include "obs/timeline.h"

namespace imoltp::dist {
namespace {

ClusterConfig SmallConfig() {
  ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.warehouses_per_node = 2;
  cfg.workers_per_node = 2;
  cfg.orders_per_district = 50;
  cfg.warmup_per_node = 50;
  cfg.txns_per_node = 250;
  cfg.multi_home_pct = 20;
  cfg.seed = 42;
  return cfg;
}

ClusterConfig TracedConfig(uint64_t sample = 1) {
  ClusterConfig cfg = SmallConfig();
  cfg.trace.enabled = true;
  cfg.trace.sample = sample;
  return cfg;
}

void RunCluster(Cluster* c) {
  ASSERT_TRUE(c->Create().ok());
  ASSERT_TRUE(c->Run().ok());
}

TEST(TxnTracerTest, TraceIdsAreDerivedAndDeterministic) {
  TxnTracer a(TxnTraceConfig{true, 1, 1 << 16}, /*cluster_seed=*/7);
  TxnTracer b(TxnTraceConfig{true, 1, 1 << 16}, /*cluster_seed=*/7);
  EXPECT_EQ(a.MakeTraceId(1, 5), b.MakeTraceId(1, 5));
  EXPECT_EQ(a.MakeTraceId(2, 9),
            DeriveSeed2(7, 2, 9, SeedStream::kTxnTrace));
  // Distinct (origin, seq) and distinct cluster seeds diverge.
  EXPECT_NE(a.MakeTraceId(0, 0), a.MakeTraceId(1, 0));
  EXPECT_NE(a.MakeTraceId(0, 0), a.MakeTraceId(0, 1));
  TxnTracer other(TxnTraceConfig{true, 1, 1 << 16}, /*cluster_seed=*/8);
  EXPECT_NE(a.MakeTraceId(1, 5), other.MakeTraceId(1, 5));
}

TEST(TxnTracerTest, SlowestChainGatesMultiHomeCriticalPath) {
  TxnTracer tracer(TxnTraceConfig{true, 1, 1 << 16}, 1);
  TxnTrace t;
  t.multi_home = true;
  t.forward_cycles = 100.0;
  t.order_wait_cycles = 200.0;
  t.ack_cycles = 50.0;
  // Two participants: the remote one is slower end to end even though
  // the home one has no delivery cost.
  t.participants.push_back({0, 0, 0.0, 900.0, 0.0, 0.0});
  t.participants.push_back({1, 0, 400.0, 800.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(t.SlowestChain(), 1200.0);
  tracer.Finish(t);
  ASSERT_EQ(tracer.ring().size(), 1u);
  EXPECT_DOUBLE_EQ(tracer.ring()[0].critical_cycles,
                   100.0 + 200.0 + 1200.0 + 50.0);
}

TEST(ClusterTraceTest, TracingHasZeroObserverEffect) {
  Cluster off(SmallConfig());
  Cluster on(TracedConfig(1));
  Cluster sampled(TracedConfig(4));
  RunCluster(&off);
  RunCluster(&on);
  RunCluster(&sampled);

  EXPECT_EQ(off.tracer().traced(), 0u);
  EXPECT_GT(on.tracer().traced(), 0u);
  EXPECT_GT(sampled.tracer().traced(), 0u);
  EXPECT_LT(sampled.tracer().traced(), on.tracer().traced());

  // The determinism contract: every fingerprinted quantity is
  // bit-identical across tracing off / full / 1-in-4.
  EXPECT_EQ(off.result().fingerprint, on.result().fingerprint);
  EXPECT_EQ(off.result().fingerprint, sampled.result().fingerprint);
  EXPECT_EQ(off.result().committed, on.result().committed);
  EXPECT_EQ(off.result().aborted, on.result().aborted);
  EXPECT_EQ(off.result().net.messages, on.result().net.messages);
  EXPECT_EQ(off.result().net.bytes, on.result().net.bytes);
  EXPECT_EQ(off.result().net.latency_charged,
            on.result().net.latency_charged);
  EXPECT_EQ(off.result().net.latency_charged,
            sampled.result().net.latency_charged);
}

TEST(ClusterTraceTest, SampledTraceIdsFallInTheSample) {
  Cluster c(TracedConfig(4));
  RunCluster(&c);
  ASSERT_FALSE(c.tracer().ring().empty());
  for (const TxnTrace& t : c.tracer().ring()) {
    EXPECT_EQ(t.trace_id % 4, 0u);
    EXPECT_EQ(t.trace_id, c.tracer().MakeTraceId(t.origin, t.seq));
  }
}

TEST(ClusterTraceTest, CriticalPathEqualsComponentSum) {
  Cluster c(TracedConfig(1));
  RunCluster(&c);
  const TxnTracer& tracer = c.tracer();
  ASSERT_FALSE(tracer.ring().empty());
  uint64_t multi = 0;
  for (const TxnTrace& t : tracer.ring()) {
    if (t.multi_home) {
      ++multi;
      // forward + order_wait + slowest(deliver + exec) + ack, and the
      // slowest chain bounds every participant's chain.
      EXPECT_DOUBLE_EQ(t.critical_cycles,
                       t.forward_cycles + t.order_wait_cycles +
                           t.SlowestChain() + t.ack_cycles);
      for (const TxnTraceParticipant& p : t.participants) {
        EXPECT_GE(t.SlowestChain() + 1e-9,
                  p.deliver_cycles + p.exec_cycles);
      }
      EXPECT_GE(t.participants.size(), 2u);
    } else {
      double sum = t.queue_cycles;
      for (const TxnTraceParticipant& p : t.participants) {
        sum += p.exec_cycles;
        EXPECT_DOUBLE_EQ(p.deliver_cycles, 0.0);
      }
      EXPECT_DOUBLE_EQ(t.critical_cycles, sum);
    }
    EXPECT_GT(t.critical_cycles, 0.0);
  }
  EXPECT_GT(multi, 0u);
  // Every committed/aborted transaction was traced at sample=1, and
  // the tail composition's shares cover (nearly) the whole path.
  EXPECT_EQ(tracer.traced(),
            c.result().committed + c.result().aborted);
  const TraceTailComposition comp = tracer.TailComposition();
  EXPECT_GT(comp.tail_traces, 0u);
  const double total = comp.forward + comp.order_wait + comp.deliver +
                       comp.exec + comp.ack;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(comp.net_order_share, total - comp.exec, 1e-12);
}

TEST(ClusterTraceTest, NodeDeathOrphansInFlightTraces) {
  ClusterConfig cfg = TracedConfig(1);
  cfg.chaos.enabled = true;
  cfg.chaos.nth_hit = 10;
  Cluster c(cfg);
  RunCluster(&c);
  ASSERT_GE(c.result().died_node, 0);
  const TxnTracer& tracer = c.tracer();
  // Reconciliation: every trace closed with exactly one terminal.
  EXPECT_GT(tracer.orphaned(), 0u);
  EXPECT_EQ(tracer.traced(), tracer.committed() + tracer.aborted() +
                                 tracer.orphaned());
  EXPECT_EQ(tracer.traced(), tracer.single_home() + tracer.multi_home());
  // Orphans never reach the completed-stage histograms.
  EXPECT_EQ(tracer.committed() + tracer.aborted(),
            tracer.critical_single_home().count() +
                tracer.critical_multi_home().count());
}

TEST(ClusterTraceTest, ReportCarriesTracingSection) {
  Cluster c(TracedConfig(1));
  RunCluster(&c);
  const std::string doc = ClusterReportToJson(&c);
  auto parsed = obs::ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& root = parsed.value();

  const obs::JsonValue* traced = root.FindPath("cluster.tracing.traced");
  ASSERT_NE(traced, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(traced->number), c.tracer().traced());

  const obs::JsonValue* queue_p99 =
      root.FindPath("cluster.tracing.stages.cycles.queue.p99");
  ASSERT_NE(queue_p99, nullptr);
  EXPECT_GT(queue_p99->number, 0.0);

  const obs::JsonValue* crit =
      root.FindPath("cluster.tracing.critical_path.cycles.multi_home.p99");
  ASSERT_NE(crit, nullptr);
  EXPECT_DOUBLE_EQ(crit->number, c.tracer().critical_multi_home().p99());

  const obs::JsonValue* share =
      root.FindPath("cluster.tracing.p99_net_order_share");
  ASSERT_NE(share, nullptr);
  EXPECT_GT(share->number, 0.0);
  EXPECT_LE(share->number, 1.0);
}

TEST(ClusterTraceTest, TimelineExportValidatesWithFlowArrows) {
  Cluster c(TracedConfig(1));
  RunCluster(&c);
  const std::string doc = ClusterTimelineToJson(c);
  uint64_t spans = 0, counters = 0, flows = 0;
  const Status s =
      obs::ValidateTimelineJson(doc, &spans, &counters, &flows);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(spans, 0u);
  EXPECT_EQ(counters, c.tracer().ring().size());

  // Every ring-resident multi-home transaction contributes one
  // "s"/"f" arrow pair per remote participant — at least one each.
  uint64_t multi = 0;
  for (const TxnTrace& t : c.tracer().ring()) {
    if (t.multi_home) ++multi;
  }
  EXPECT_GT(multi, 0u);
  EXPECT_GE(flows, 2 * multi);
}

}  // namespace
}  // namespace imoltp::dist
