// End-to-end robustness acceptance tests: seeded crash → recover →
// verify cycles hold the workload invariants on every engine, the fault
// schedule (and everything downstream) is bit-identical across
// same-seed runs in deterministic mode, and retry-with-backoff strictly
// lifts the committed-transaction count under an injected lock-conflict
// storm. See docs/robustness.md.

#include <gtest/gtest.h>

#include <string>

#include "fault/chaos.h"

namespace imoltp::fault {
namespace {

using engine::EngineKind;

constexpr EngineKind kAllEngines[] = {
    EngineKind::kShoreMt, EngineKind::kDbmsD, EngineKind::kVoltDb,
    EngineKind::kHyPer, EngineKind::kDbmsM};

/// Small scales keep one cycle in CI-friendly time while still
/// committing enough transactions for a mid-run crash to be
/// interesting.
ChaosOptions FastOptions(EngineKind kind, const std::string& workload) {
  ChaosOptions opt;
  opt.engine = kind;
  opt.workload = workload;
  opt.cycles = 1;
  opt.workers = 2;
  opt.warmup_txns = 20;
  opt.measure_txns = 150;
  opt.seed = 11;
  return opt;
}

std::string Violations(const InvariantReport& rep) {
  std::string all;
  for (const std::string& v : rep.violations) all += v + "\n";
  return all;
}

class ChaosEngineTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ChaosEngineTest, TpcbSurvivesMidCommitCrash) {
  ChaosOptions opt = FastOptions(GetParam(), "tpcb");
  opt.cycles = 2;
  opt.points.push_back({kCrashMidCommit, {0.0, 90}});
  const auto result = RunChaos(opt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok);
  ASSERT_EQ(result->cycles.size(), 2u);
  for (const ChaosCycleResult& c : result->cycles) {
    EXPECT_EQ(c.crash_point, kCrashMidCommit) << "cycle " << c.cycle;
    EXPECT_TRUE(c.recovered.ok)
        << "cycle " << c.cycle << ":\n" << Violations(c.recovered);
  }
}

TEST_P(ChaosEngineTest, TpccSurvivesPostCommitCrashAndTornTail) {
  ChaosOptions opt = FastOptions(GetParam(), "tpcc");
  opt.points.push_back({kCrashPostCommit, {0.0, 120}});
  opt.points.push_back({kLogTruncateTail, {0.0, 1}});
  const auto result = RunChaos(opt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok);
  ASSERT_EQ(result->cycles.size(), 1u);
  const ChaosCycleResult& c = result->cycles[0];
  EXPECT_EQ(c.crash_point, kCrashPostCommit);
  EXPECT_TRUE(c.recovered.ok) << Violations(c.recovered);
}

TEST_P(ChaosEngineTest, FaultFreeCycleAuditsLiveAndRecovered) {
  // No points armed: the run completes, and both the live database and
  // the log-recovered one must pass the invariant audit.
  const auto result = RunChaos(FastOptions(GetParam(), "tpcb"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok);
  const ChaosCycleResult& c = result->cycles[0];
  EXPECT_TRUE(c.crash_point.empty());
  EXPECT_TRUE(c.recovered.ok) << Violations(c.recovered);
  ASSERT_TRUE(c.live_checked);
  EXPECT_TRUE(c.live.ok) << Violations(c.live);
  EXPECT_GT(c.committed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, ChaosEngineTest, ::testing::ValuesIn(kAllEngines),
    [](const ::testing::TestParamInfo<EngineKind>& i) {
      std::string n = engine::EngineKindName(i.param);
      for (char& c : n) {
        if (c == '-' || c == ' ') c = '_';
      }
      return n;
    });

TEST(ChaosDeterminismTest, SameSeedSameFingerprint) {
  // The acceptance bar: two campaigns with identical options in
  // kDeterministic mode match bit for bit — same crash schedule, same
  // surviving log, same invariant checksums, same fingerprints.
  ChaosOptions opt = FastOptions(EngineKind::kShoreMt, "tpcb");
  opt.cycles = 2;
  opt.points.push_back({kCrashMidCommit, {0.0, 110}});
  opt.points.push_back({kLogTruncateTail, {0.0, 1}});
  const auto a = RunChaos(opt);
  const auto b = RunChaos(opt);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(a->ok);
  EXPECT_EQ(a->fingerprint, b->fingerprint);
  ASSERT_EQ(a->cycles.size(), b->cycles.size());
  for (size_t i = 0; i < a->cycles.size(); ++i) {
    EXPECT_EQ(a->cycles[i].fingerprint, b->cycles[i].fingerprint);
    EXPECT_EQ(a->cycles[i].committed, b->cycles[i].committed);
    EXPECT_EQ(a->cycles[i].crash_point, b->cycles[i].crash_point);
    EXPECT_EQ(a->cycles[i].dropped_records,
              b->cycles[i].dropped_records);
  }
}

TEST(ChaosRetryTest, RetryLiftsCommitsUnderConflictStorm) {
  // An injected lock-conflict storm aborts a third of acquisitions.
  // Without retry those transactions are lost; with bounded-backoff
  // retry most recover, so the committed count must strictly exceed
  // the no-retry baseline (the ctest-enforced acceptance criterion).
  ChaosOptions base = FastOptions(EngineKind::kShoreMt, "tpcb");
  base.seed = 5;
  base.points.push_back({kLockConflict, {0.3, 0}});

  const auto no_retry = RunChaos(base);
  ASSERT_TRUE(no_retry.ok()) << no_retry.status().ToString();
  EXPECT_TRUE(no_retry->ok);

  ChaosOptions with_retry = base;
  with_retry.retry.max_attempts = 4;
  with_retry.retry.backoff_cycles = 500;
  const auto retried = RunChaos(with_retry);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_TRUE(retried->ok);

  const ChaosCycleResult& plain = no_retry->cycles[0];
  const ChaosCycleResult& lifted = retried->cycles[0];
  EXPECT_GT(lifted.committed, plain.committed)
      << "retry/backoff must strictly beat the no-retry baseline";
  EXPECT_GT(lifted.retry.retries, 0u);
  EXPECT_GT(lifted.retry.retry_successes, 0u);
  EXPECT_EQ(plain.retry.retries, 0u);
  // The storm's aborts are classified as injected faults, not real
  // lock conflicts (the injector, not a second holder, caused them).
  EXPECT_GT(plain.breakdown.injected_fault, 0u);
}

TEST(ChaosOptionsTest, RejectsBadOptions) {
  ChaosOptions opt;
  opt.workload = "micro";
  EXPECT_FALSE(RunChaos(opt).ok());

  opt = ChaosOptions();
  opt.cycles = 0;
  EXPECT_FALSE(RunChaos(opt).ok());

  opt = ChaosOptions();
  opt.workload = "tpcc";
  opt.workers = 3;
  opt.tpcc_warehouses = 4;  // not divisible by workers
  EXPECT_FALSE(RunChaos(opt).ok());
}

TEST(ChaosJsonTest, ReportSerializes) {
  ChaosOptions opt = FastOptions(EngineKind::kVoltDb, "tpcb");
  opt.points.push_back({kCrashMidCommit, {0.0, 70}});
  const auto result = RunChaos(opt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string json = ChaosReportToJson(opt, *result);
  EXPECT_NE(json.find("\"schema\":\"imoltp.chaos.v2\""),
            std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\""), std::string::npos);
  EXPECT_NE(json.find("\"crash_point\""), std::string::npos);
  EXPECT_NE(json.find("crash.mid_commit"), std::string::npos);
  // v2: checkpoint/recovery accounting is present even when
  // checkpointing is off (zeros), so consumers see a stable shape.
  EXPECT_NE(json.find("\"invariant_only\""), std::string::npos);
  EXPECT_NE(json.find("\"checkpoint\""), std::string::npos);
  EXPECT_NE(json.find("\"recovery\""), std::string::npos);
  EXPECT_NE(json.find("\"replayed_records\""), std::string::npos);
}

}  // namespace
}  // namespace imoltp::fault
