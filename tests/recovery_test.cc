// Crash-recovery tests: run transactions against an engine, then REDO
// its stable log onto a freshly populated database and verify the
// replayed state matches — updates applied, inserts present, deletes
// gone, aborted transactions invisible.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "mcsim/machine.h"
#include "txn/checkpoint.h"

namespace imoltp::engine {
namespace {

mcsim::MachineConfig NoTlb() {
  mcsim::MachineConfig c;
  c.model_tlb = false;
  return c;
}

TableDef SimpleTable(uint64_t rows) {
  TableDef def;
  def.name = "t";
  def.schema = storage::TwoLongColumns();
  def.initial_rows = rows;
  def.seed = 3;
  def.needs_ordered_index = true;
  return def;
}

// Engines whose logging is physical (replayable). VoltDB uses logical
// command logging, which REDO skips by design.
constexpr EngineKind kReplayable[] = {
    EngineKind::kShoreMt, EngineKind::kDbmsD, EngineKind::kHyPer,
    EngineKind::kDbmsM};

class RecoveryTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  RecoveryTest()
      : machine_(NoTlb()),
        engine_(CreateEngine(GetParam(), &machine_, EngineOptions())) {
    EXPECT_TRUE(engine_->CreateDatabase({SimpleTable(kRows)}).ok());
  }

  Status Run(const std::function<Status(TxnContext&)>& body) {
    TxnRequest req;
    req.key_space = kRows;
    return engine_->Execute(0, req, body);
  }

  /// Fresh engine + database, then REDO this engine's log onto it.
  std::unique_ptr<Engine> Recover(mcsim::MachineSim* fresh_machine) {
    auto recovered =
        CreateEngine(GetParam(), fresh_machine, EngineOptions());
    EXPECT_TRUE(recovered->CreateDatabase({SimpleTable(kRows)}).ok());
    EXPECT_TRUE(recovered->Replay(engine_->StableLog()).ok());
    return recovered;
  }

  static int64_t ReadValue(Engine* engine, uint64_t key, bool* found) {
    int64_t value = 0;
    TxnRequest req;
    req.key_space = kRows;
    const Status s = engine->Execute(0, req, [&](TxnContext& ctx) {
      storage::RowId rid;
      Status st = ctx.Probe(0, index::Key::FromUint64(key), &rid);
      if (!st.ok()) return st;
      uint8_t row[16];
      st = ctx.Read(0, rid, row);
      if (!st.ok()) return st;
      value = storage::TwoLongColumns().GetLong(row, 1);
      return Status::Ok();
    });
    *found = s.ok();
    return value;
  }

  static constexpr uint64_t kRows = 3000;

  mcsim::MachineSim machine_;
  std::unique_ptr<Engine> engine_;
};

TEST_P(RecoveryTest, CommittedUpdatesSurviveReplay) {
  for (int64_t i = 0; i < 40; ++i) {
    const int64_t v = 90000 + i;
    ASSERT_TRUE(Run([&](TxnContext& ctx) {
                  storage::RowId rid;
                  Status st = ctx.Probe(
                      0, index::Key::FromUint64(100 + i), &rid);
                  if (!st.ok()) return st;
                  return ctx.Update(0, rid, 1, &v);
                }).ok());
  }
  mcsim::MachineSim fresh(NoTlb());
  auto recovered = Recover(&fresh);
  for (int64_t i = 0; i < 40; ++i) {
    bool found = false;
    EXPECT_EQ(ReadValue(recovered.get(), 100 + i, &found), 90000 + i);
    EXPECT_TRUE(found);
  }
}

TEST_P(RecoveryTest, CommittedInsertsSurviveReplay) {
  const storage::Schema schema = storage::TwoLongColumns();
  for (int64_t i = 0; i < 25; ++i) {
    ASSERT_TRUE(Run([&](TxnContext& ctx) {
                  uint8_t row[16];
                  schema.SetLong(row, 0, 50000 + i);
                  schema.SetLong(row, 1, i * 11);
                  return ctx.Insert(
                      0, row, index::Key::FromUint64(50000 + i));
                }).ok());
  }
  mcsim::MachineSim fresh(NoTlb());
  auto recovered = Recover(&fresh);
  for (int64_t i = 0; i < 25; ++i) {
    bool found = false;
    EXPECT_EQ(ReadValue(recovered.get(), 50000 + i, &found), i * 11);
    EXPECT_TRUE(found) << i;
  }
}

TEST_P(RecoveryTest, CommittedDeletesSurviveReplay) {
  for (uint64_t key : {7u, 77u, 777u}) {
    ASSERT_TRUE(Run([&](TxnContext& ctx) {
                  storage::RowId rid;
                  Status st =
                      ctx.Probe(0, index::Key::FromUint64(key), &rid);
                  if (!st.ok()) return st;
                  return ctx.Delete(0, rid,
                                    index::Key::FromUint64(key));
                }).ok());
  }
  mcsim::MachineSim fresh(NoTlb());
  auto recovered = Recover(&fresh);
  for (uint64_t key : {7u, 77u, 777u}) {
    bool found = true;
    ReadValue(recovered.get(), key, &found);
    EXPECT_FALSE(found) << key;
  }
  bool found = false;
  ReadValue(recovered.get(), 8, &found);
  EXPECT_TRUE(found);  // neighbors intact
}

TEST_P(RecoveryTest, AbortedTransactionIsInvisibleAfterReplay) {
  // Update row 5, then fail the transaction by probing a missing key:
  // neither live state nor the replayed database may show the update.
  const int64_t poison = 666666;
  const Status s = Run([&](TxnContext& ctx) {
    storage::RowId rid;
    Status st = ctx.Probe(0, index::Key::FromUint64(5), &rid);
    if (!st.ok()) return st;
    st = ctx.Update(0, rid, 1, &poison);
    if (!st.ok()) return st;
    return ctx.Probe(0, index::Key::FromUint64(999999999), &rid);
  });
  ASSERT_FALSE(s.ok());

  bool found = false;
  EXPECT_NE(ReadValue(engine_.get(), 5, &found), poison)
      << "live state leaked an aborted update (undo failed)";
  ASSERT_TRUE(found);

  mcsim::MachineSim fresh(NoTlb());
  auto recovered = Recover(&fresh);
  EXPECT_NE(ReadValue(recovered.get(), 5, &found), poison)
      << "replay applied an uncommitted update";
}

TEST_P(RecoveryTest, AbortedInsertIsRolledBackLive) {
  const storage::Schema schema = storage::TwoLongColumns();
  const Status s = Run([&](TxnContext& ctx) {
    uint8_t row[16];
    schema.SetLong(row, 0, 60000);
    schema.SetLong(row, 1, 1);
    Status st = ctx.Insert(0, row, index::Key::FromUint64(60000));
    if (!st.ok()) return st;
    storage::RowId rid;
    return ctx.Probe(0, index::Key::FromUint64(999999999), &rid);
  });
  ASSERT_FALSE(s.ok());
  bool found = true;
  ReadValue(engine_.get(), 60000, &found);
  EXPECT_FALSE(found) << "aborted insert still probe-able";
}

TEST_P(RecoveryTest, ReplayIsIdempotentOnFreshState) {
  const int64_t v = 4242;
  ASSERT_TRUE(Run([&](TxnContext& ctx) {
                storage::RowId rid;
                Status st =
                    ctx.Probe(0, index::Key::FromUint64(9), &rid);
                if (!st.ok()) return st;
                return ctx.Update(0, rid, 1, &v);
              }).ok());
  mcsim::MachineSim fresh(NoTlb());
  auto recovered = Recover(&fresh);
  // A second REDO pass of pure updates must not change the outcome.
  ASSERT_TRUE(recovered->Replay(engine_->StableLog()).ok());
  bool found = false;
  EXPECT_EQ(ReadValue(recovered.get(), 9, &found), 4242);
}

TEST_P(RecoveryTest, AbortRecordSuppressesInterleavedDelete) {
  // Two committed deletes produce a log of interleaved kDelete/kCommit
  // records. Rewriting the second transaction's kCommit to kAbort must
  // flip exactly that delete to a no-op on replay: recovery's analysis
  // pass trusts the commit/abort records, not the presence of REDO
  // records.
  for (uint64_t key : {7u, 77u}) {
    ASSERT_TRUE(Run([&](TxnContext& ctx) {
                  storage::RowId rid;
                  Status st =
                      ctx.Probe(0, index::Key::FromUint64(key), &rid);
                  if (!st.ok()) return st;
                  return ctx.Delete(0, rid,
                                    index::Key::FromUint64(key));
                }).ok());
  }
  std::vector<txn::LogRecord> log = engine_->StableLog();
  uint64_t aborted_txn = 0;
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    if (it->op == txn::LogOp::kCommit) {
      it->op = txn::LogOp::kAbort;
      aborted_txn = it->txn_id;
      break;
    }
  }
  ASSERT_NE(aborted_txn, 0u);  // a commit record existed to rewrite
  bool has_delete_for_aborted = false;
  for (const auto& rec : log) {
    if (rec.op == txn::LogOp::kDelete && rec.txn_id == aborted_txn) {
      has_delete_for_aborted = true;
    }
  }
  ASSERT_TRUE(has_delete_for_aborted);

  mcsim::MachineSim fresh(NoTlb());
  auto recovered = CreateEngine(GetParam(), &fresh, EngineOptions());
  ASSERT_TRUE(recovered->CreateDatabase({SimpleTable(kRows)}).ok());
  ASSERT_TRUE(recovered->Replay(log).ok());
  bool found = true;
  ReadValue(recovered.get(), 7, &found);
  EXPECT_FALSE(found) << "committed delete lost";
  found = false;
  ReadValue(recovered.get(), 77, &found);
  EXPECT_TRUE(found) << "aborted delete applied on replay";
}

TEST_P(RecoveryTest, TruncatedMidTransactionDropsUncommittedTail) {
  // Six committed updates, then the log loses its suffix starting at
  // the last commit record — the crash hit mid-transaction from the
  // device's point of view. Replay must apply the five transactions
  // whose commits survived and ignore the commitless tail.
  for (int64_t i = 0; i < 6; ++i) {
    const int64_t v = 7000 + i;
    ASSERT_TRUE(Run([&](TxnContext& ctx) {
                  storage::RowId rid;
                  Status st = ctx.Probe(
                      0, index::Key::FromUint64(200 + i), &rid);
                  if (!st.ok()) return st;
                  return ctx.Update(0, rid, 1, &v);
                }).ok());
  }
  std::vector<txn::LogRecord> log = engine_->StableLog();
  size_t last_commit = log.size();
  for (size_t i = log.size(); i-- > 0;) {
    if (log[i].op == txn::LogOp::kCommit) {
      last_commit = i;
      break;
    }
  }
  ASSERT_LT(last_commit, log.size());
  log.resize(last_commit);  // the tail txn's records lack their commit

  mcsim::MachineSim fresh(NoTlb());
  auto recovered = CreateEngine(GetParam(), &fresh, EngineOptions());
  ASSERT_TRUE(recovered->CreateDatabase({SimpleTable(kRows)}).ok());
  ASSERT_TRUE(recovered->Replay(log).ok());
  for (int64_t i = 0; i < 5; ++i) {
    bool found = false;
    EXPECT_EQ(ReadValue(recovered.get(), 200 + i, &found), 7000 + i);
    EXPECT_TRUE(found) << i;
  }
  bool found = false;
  EXPECT_NE(ReadValue(recovered.get(), 205, &found), 7005)
      << "uncommitted tail transaction applied";
  EXPECT_TRUE(found);  // the row itself still exists, unmodified
}

TEST_P(RecoveryTest, TornRecordEndsTheUsableLog) {
  // A torn write (bad device checksum) ends the usable log: everything
  // committed before it replays, everything after — even with a valid
  // commit record — does not.
  for (int64_t i = 0; i < 4; ++i) {
    const int64_t v = 8000 + i;
    ASSERT_TRUE(Run([&](TxnContext& ctx) {
                  storage::RowId rid;
                  Status st = ctx.Probe(
                      0, index::Key::FromUint64(300 + i), &rid);
                  if (!st.ok()) return st;
                  return ctx.Update(0, rid, 1, &v);
                }).ok());
  }
  std::vector<txn::LogRecord> log = engine_->StableLog();
  size_t commits_seen = 0;
  for (auto& rec : log) {
    if (rec.op == txn::LogOp::kCommit && ++commits_seen == 3) {
      rec.torn = true;  // the third txn's commit reached disk torn
      break;
    }
  }
  ASSERT_EQ(commits_seen, 3u);

  mcsim::MachineSim fresh(NoTlb());
  auto recovered = CreateEngine(GetParam(), &fresh, EngineOptions());
  ASSERT_TRUE(recovered->CreateDatabase({SimpleTable(kRows)}).ok());
  ASSERT_TRUE(recovered->Replay(log).ok());
  for (int64_t i = 0; i < 2; ++i) {
    bool found = false;
    EXPECT_EQ(ReadValue(recovered.get(), 300 + i, &found), 8000 + i);
  }
  for (int64_t i = 2; i < 4; ++i) {
    bool found = false;
    EXPECT_NE(ReadValue(recovered.get(), 300 + i, &found), 8000 + i)
        << "update past the torn record applied";
    EXPECT_TRUE(found);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ReplayableEngines, RecoveryTest, ::testing::ValuesIn(kReplayable),
    [](const ::testing::TestParamInfo<EngineKind>& i) {
      std::string n = EngineKindName(i.param);
      for (char& c : n) {
        if (c == '-' || c == ' ') c = '_';
      }
      return n;
    });

// Checkpoint-aware recovery: the engine runs with fuzzy checkpointing
// enabled, the test drives the capture state machine via CheckpointTick
// and recovers a fresh instance from (device image, retained log,
// truncation anchor) instead of a full replay.
class CheckpointRecoveryTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  static constexpr uint64_t kRows = 3000;

  void Create(const txn::CheckpointPolicy& policy) {
    EngineOptions opts;
    opts.checkpoint = policy;
    machine_ = std::make_unique<mcsim::MachineSim>(NoTlb());
    engine_ = CreateEngine(GetParam(), machine_.get(), opts);
    ASSERT_TRUE(engine_->CreateDatabase({SimpleTable(kRows)}).ok());
  }

  /// One committed single-row update followed by a checkpoint tick —
  /// the cadence the experiment driver provides at every transaction
  /// boundary.
  void UpdateAndTick(uint64_t key, int64_t value) {
    TxnRequest req;
    req.key_space = kRows;
    ASSERT_TRUE(engine_
                    ->Execute(0, req,
                              [&](TxnContext& ctx) {
                                storage::RowId rid;
                                Status st = ctx.Probe(
                                    0, index::Key::FromUint64(key), &rid);
                                if (!st.ok()) return st;
                                return ctx.Update(0, rid, 1, &value);
                              })
                    .ok());
    engine_->CheckpointTick(0);
  }

  /// Checkpoint ticks with no transaction in between — an idle worker
  /// still advances capture and (eventually) begins new checkpoints.
  void IdleTicks(int n) {
    for (int i = 0; i < n; ++i) engine_->CheckpointTick(0);
  }

  /// Recovers a fresh instance from this engine's device image +
  /// retained log and returns it (checkpointing disabled on the
  /// recovered side; it only reads the inputs).
  std::unique_ptr<Engine> Recover(std::vector<txn::CheckpointImage> device,
                                  txn::RecoveryStats* stats,
                                  Status* status = nullptr) {
    fresh_machine_ = std::make_unique<mcsim::MachineSim>(NoTlb());
    auto recovered =
        CreateEngine(GetParam(), fresh_machine_.get(), EngineOptions());
    EXPECT_TRUE(recovered->CreateDatabase({SimpleTable(kRows)}).ok());
    const Status s =
        recovered->Recover(std::move(device), engine_->StableLog(),
                           engine_->LogTruncationLsn(), stats);
    if (status != nullptr) {
      *status = s;
    } else {
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
    return recovered;
  }

  static int64_t ReadValue(Engine* engine, uint64_t key, bool* found) {
    int64_t value = 0;
    TxnRequest req;
    req.key_space = kRows;
    const Status s = engine->Execute(0, req, [&](TxnContext& ctx) {
      storage::RowId rid;
      Status st = ctx.Probe(0, index::Key::FromUint64(key), &rid);
      if (!st.ok()) return st;
      uint8_t row[16];
      st = ctx.Read(0, rid, row);
      if (!st.ok()) return st;
      value = storage::TwoLongColumns().GetLong(row, 1);
      return Status::Ok();
    });
    *found = s.ok();
    return value;
  }

  std::unique_ptr<mcsim::MachineSim> machine_;
  std::unique_ptr<mcsim::MachineSim> fresh_machine_;
  std::unique_ptr<Engine> engine_;
};

TEST_P(CheckpointRecoveryTest, EmptyLogAndDeviceRecoverCleanly) {
  // Recovery of a never-written instance is a clean no-op: nothing to
  // restore, nothing to replay, initial population intact.
  Create(txn::CheckpointPolicy{});  // disabled
  txn::RecoveryStats stats;
  auto recovered = Recover({}, &stats);
  EXPECT_FALSE(stats.used_checkpoint);
  EXPECT_EQ(stats.replayed_records, 0u);
  EXPECT_EQ(stats.undone_records, 0u);
  bool found = false;
  ReadValue(recovered.get(), 42, &found);
  EXPECT_TRUE(found);
}

TEST_P(CheckpointRecoveryTest, CheckpointedRoundTripReplaysOnlyTheTail) {
  txn::CheckpointPolicy policy;
  policy.enabled = true;
  policy.every_n_ticks = 8;
  Create(policy);
  for (int64_t i = 0; i < 48; ++i) {
    UpdateAndTick(100 + i, 20000 + i);
  }
  const txn::CheckpointManager* cm = engine_->checkpoints();
  ASSERT_NE(cm, nullptr);
  ASSERT_GE(cm->stats().completed, 1u);
  ASSERT_GT(engine_->LogTruncationLsn(), 0u);

  txn::RecoveryStats stats;
  auto recovered = Recover(cm->DeviceImage(), &stats);
  EXPECT_TRUE(stats.used_checkpoint);
  // The whole point of the checkpoint: strictly fewer records replayed
  // than the lifetime log.
  EXPECT_LT(stats.replayed_records, engine_->AppendedLogRecords());
  for (int64_t i = 0; i < 48; ++i) {
    bool found = false;
    EXPECT_EQ(ReadValue(recovered.get(), 100 + i, &found), 20000 + i);
    EXPECT_TRUE(found) << i;
  }
}

TEST_P(CheckpointRecoveryTest, CheckpointOnlyRecoveryNeedsNoTailReplay) {
  // retain=1 anchors the log at the newest checkpoint's own begin LSN.
  // After the last transaction, idle ticks complete a final checkpoint
  // whose capture already holds every update — the retained tail is
  // pure checkpoint markers and replays zero records.
  txn::CheckpointPolicy policy;
  policy.enabled = true;
  policy.every_n_ticks = 4;
  policy.retain = 1;
  Create(policy);
  for (int64_t i = 0; i < 12; ++i) {
    UpdateAndTick(500 + i, 31000 + i);
  }
  const txn::CheckpointManager* cm = engine_->checkpoints();
  ASSERT_NE(cm, nullptr);
  const uint64_t completed_before = cm->stats().completed;
  IdleTicks(64);  // at least one full begin→complete cycle, no new data
  ASSERT_GT(cm->stats().completed, completed_before);
  // Several completions at retain=1 mean the log was truncated more
  // than once; repeated truncation must stay monotone and harmless.
  EXPECT_GE(cm->stats().truncations, 2u);
  ASSERT_GT(engine_->LogTruncationLsn(), 0u);

  txn::RecoveryStats stats;
  auto recovered = Recover(cm->DeviceImage(), &stats);
  EXPECT_TRUE(stats.used_checkpoint);
  EXPECT_EQ(stats.replayed_records, 0u)
      << "tail past the final checkpoint should be markers only";
  for (int64_t i = 0; i < 12; ++i) {
    bool found = false;
    EXPECT_EQ(ReadValue(recovered.get(), 500 + i, &found), 31000 + i);
    EXPECT_TRUE(found) << i;
  }
}

TEST_P(CheckpointRecoveryTest, CrashDuringCaptureUsesPreviousCheckpoint) {
  // Slow the capture rate down and crash while the second checkpoint is
  // still pending: the device holds only the first complete checkpoint,
  // and recovery restores it + replays the tail — including the updates
  // the dead capture had not reached.
  txn::CheckpointPolicy policy;
  policy.enabled = true;
  policy.every_n_ticks = 8;
  policy.pages_per_step = 1;
  Create(policy);
  const txn::CheckpointManager* cm = engine_->checkpoints();
  ASSERT_NE(cm, nullptr);
  int64_t i = 0;
  while (cm->stats().begun < 2 && i < 256) {
    UpdateAndTick(700 + i, 45000 + i);
    ++i;
  }
  ASSERT_GE(cm->stats().begun, 2u);
  ASSERT_EQ(cm->stats().completed, 1u);
  const auto device = cm->DeviceImage();
  ASSERT_EQ(device.size(), 1u);  // the pending capture never lands

  txn::RecoveryStats stats;
  auto recovered = Recover(device, &stats);
  EXPECT_TRUE(stats.used_checkpoint);
  EXPECT_EQ(stats.checkpoint_id, device[0].id);
  for (int64_t k = 0; k < i; ++k) {
    bool found = false;
    EXPECT_EQ(ReadValue(recovered.get(), 700 + k, &found), 45000 + k);
    EXPECT_TRUE(found) << k;
  }
}

TEST_P(CheckpointRecoveryTest, TornPageFallsBackToPreviousCheckpoint) {
  txn::CheckpointPolicy policy;
  policy.enabled = true;
  policy.every_n_ticks = 4;
  Create(policy);
  for (int64_t i = 0; i < 32; ++i) {
    UpdateAndTick(900 + i, 52000 + i);
  }
  const txn::CheckpointManager* cm = engine_->checkpoints();
  ASSERT_NE(cm, nullptr);
  std::vector<txn::CheckpointImage> device = cm->DeviceImage();
  ASSERT_GE(device.size(), 2u);
  txn::CheckpointImage& newest = device.back();
  txn::CheckpointPage* victim = nullptr;
  for (auto& slice : newest.slices) {
    if (!slice.pages.empty()) victim = &slice.pages.front();
  }
  ASSERT_NE(victim, nullptr) << "newest checkpoint captured no pages";
  txn::TearPage(victim);
  ASSERT_TRUE(newest.AnyTorn());

  txn::RecoveryStats stats;
  auto recovered = Recover(device, &stats);
  EXPECT_TRUE(stats.used_checkpoint);
  EXPECT_GE(stats.torn_pages, 1u);
  EXPECT_EQ(stats.checkpoints_discarded, 1u);
  EXPECT_EQ(stats.checkpoint_id, device[device.size() - 2].id)
      << "should have fallen back to the previous complete checkpoint";
  // The retained log reaches back to the oldest retained checkpoint's
  // begin LSN, so the fallback loses nothing.
  for (int64_t i = 0; i < 32; ++i) {
    bool found = false;
    EXPECT_EQ(ReadValue(recovered.get(), 900 + i, &found), 52000 + i);
    EXPECT_TRUE(found) << i;
  }
}

TEST_P(CheckpointRecoveryTest, TruncatedLogWithoutCheckpointIsAnError) {
  // Once the log has been truncated, a full replay is unsound — if no
  // checksum-clean checkpoint survives either, recovery must refuse
  // rather than silently produce a hole.
  txn::CheckpointPolicy policy;
  policy.enabled = true;
  policy.every_n_ticks = 4;
  Create(policy);
  for (int64_t i = 0; i < 16; ++i) {
    UpdateAndTick(1200 + i, 61000 + i);
  }
  ASSERT_GT(engine_->LogTruncationLsn(), 0u);
  txn::RecoveryStats stats;
  Status status;
  Recover({}, &stats, &status);  // the checkpoint device burned down
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(stats.used_checkpoint);
}

INSTANTIATE_TEST_SUITE_P(
    ReplayableEngines, CheckpointRecoveryTest,
    ::testing::ValuesIn(kReplayable),
    [](const ::testing::TestParamInfo<EngineKind>& i) {
      std::string n = EngineKindName(i.param);
      for (char& c : n) {
        if (c == '-' || c == ' ') c = '_';
      }
      return n;
    });

TEST(CommandLogTest, VoltDbLogsCommandsNotPhysicalRecords) {
  mcsim::MachineSim m(NoTlb());
  auto engine =
      CreateEngine(EngineKind::kVoltDb, &m, EngineOptions());
  ASSERT_TRUE(engine->CreateDatabase({SimpleTable(1000)}).ok());
  const int64_t v = 1;
  TxnRequest req;
  ASSERT_TRUE(engine
                  ->Execute(0, req,
                            [&](TxnContext& ctx) {
                              storage::RowId rid;
                              Status st = ctx.Probe(
                                  0, index::Key::FromUint64(3), &rid);
                              if (!st.ok()) return st;
                              return ctx.Update(0, rid, 1, &v);
                            })
                  .ok());
  const auto log = engine->StableLog();
  ASSERT_FALSE(log.empty());
  bool has_command = false;
  for (const auto& rec : log) {
    EXPECT_NE(rec.op, txn::LogOp::kUpdate);  // no physical records
    if (rec.op == txn::LogOp::kCommand) has_command = true;
  }
  EXPECT_TRUE(has_command);
  // Replay skips logical records without failing.
  EXPECT_TRUE(engine->Replay(log).ok());
}

TEST(CommandLogTest, VoltDbToleratesTruncatedAndAbortedCommandLog) {
  // The fifth engine's logical log has no physical REDO content, but
  // recovery must still accept a damaged one: a mid-transaction
  // truncation or an interleaved abort record cannot make Replay fail
  // or corrupt the freshly populated database.
  mcsim::MachineSim m(NoTlb());
  auto engine =
      CreateEngine(EngineKind::kVoltDb, &m, EngineOptions());
  ASSERT_TRUE(engine->CreateDatabase({SimpleTable(1000)}).ok());
  const int64_t v = 5;
  TxnRequest req;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine
                    ->Execute(0, req,
                              [&](TxnContext& ctx) {
                                storage::RowId rid;
                                Status st = ctx.Probe(
                                    0, index::Key::FromUint64(3), &rid);
                                if (!st.ok()) return st;
                                return ctx.Update(0, rid, 1, &v);
                              })
                    .ok());
  }
  std::vector<txn::LogRecord> log = engine->StableLog();
  ASSERT_GE(log.size(), 2u);
  log.resize(log.size() - 1);          // lose the tail mid-transaction
  log.back().op = txn::LogOp::kAbort;  // and interleave an abort record

  mcsim::MachineSim fresh(NoTlb());
  auto recovered =
      CreateEngine(EngineKind::kVoltDb, &fresh, EngineOptions());
  ASSERT_TRUE(recovered->CreateDatabase({SimpleTable(1000)}).ok());
  EXPECT_TRUE(recovered->Replay(log).ok());
  storage::RowId rid;
  TxnRequest probe;
  EXPECT_TRUE(recovered
                  ->Execute(0, probe,
                            [&](TxnContext& ctx) {
                              return ctx.Probe(
                                  0, index::Key::FromUint64(3), &rid);
                            })
                  .ok());
}

}  // namespace
}  // namespace imoltp::engine
