// Crash-recovery tests: run transactions against an engine, then REDO
// its stable log onto a freshly populated database and verify the
// replayed state matches — updates applied, inserts present, deletes
// gone, aborted transactions invisible.

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "mcsim/machine.h"

namespace imoltp::engine {
namespace {

mcsim::MachineConfig NoTlb() {
  mcsim::MachineConfig c;
  c.model_tlb = false;
  return c;
}

TableDef SimpleTable(uint64_t rows) {
  TableDef def;
  def.name = "t";
  def.schema = storage::TwoLongColumns();
  def.initial_rows = rows;
  def.seed = 3;
  def.needs_ordered_index = true;
  return def;
}

// Engines whose logging is physical (replayable). VoltDB uses logical
// command logging, which REDO skips by design.
constexpr EngineKind kReplayable[] = {
    EngineKind::kShoreMt, EngineKind::kDbmsD, EngineKind::kHyPer,
    EngineKind::kDbmsM};

class RecoveryTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  RecoveryTest()
      : machine_(NoTlb()),
        engine_(CreateEngine(GetParam(), &machine_, EngineOptions())) {
    EXPECT_TRUE(engine_->CreateDatabase({SimpleTable(kRows)}).ok());
  }

  Status Run(const std::function<Status(TxnContext&)>& body) {
    TxnRequest req;
    req.key_space = kRows;
    return engine_->Execute(0, req, body);
  }

  /// Fresh engine + database, then REDO this engine's log onto it.
  std::unique_ptr<Engine> Recover(mcsim::MachineSim* fresh_machine) {
    auto recovered =
        CreateEngine(GetParam(), fresh_machine, EngineOptions());
    EXPECT_TRUE(recovered->CreateDatabase({SimpleTable(kRows)}).ok());
    EXPECT_TRUE(recovered->Replay(engine_->StableLog()).ok());
    return recovered;
  }

  static int64_t ReadValue(Engine* engine, uint64_t key, bool* found) {
    int64_t value = 0;
    TxnRequest req;
    req.key_space = kRows;
    const Status s = engine->Execute(0, req, [&](TxnContext& ctx) {
      storage::RowId rid;
      Status st = ctx.Probe(0, index::Key::FromUint64(key), &rid);
      if (!st.ok()) return st;
      uint8_t row[16];
      st = ctx.Read(0, rid, row);
      if (!st.ok()) return st;
      value = storage::TwoLongColumns().GetLong(row, 1);
      return Status::Ok();
    });
    *found = s.ok();
    return value;
  }

  static constexpr uint64_t kRows = 3000;

  mcsim::MachineSim machine_;
  std::unique_ptr<Engine> engine_;
};

TEST_P(RecoveryTest, CommittedUpdatesSurviveReplay) {
  for (int64_t i = 0; i < 40; ++i) {
    const int64_t v = 90000 + i;
    ASSERT_TRUE(Run([&](TxnContext& ctx) {
                  storage::RowId rid;
                  Status st = ctx.Probe(
                      0, index::Key::FromUint64(100 + i), &rid);
                  if (!st.ok()) return st;
                  return ctx.Update(0, rid, 1, &v);
                }).ok());
  }
  mcsim::MachineSim fresh(NoTlb());
  auto recovered = Recover(&fresh);
  for (int64_t i = 0; i < 40; ++i) {
    bool found = false;
    EXPECT_EQ(ReadValue(recovered.get(), 100 + i, &found), 90000 + i);
    EXPECT_TRUE(found);
  }
}

TEST_P(RecoveryTest, CommittedInsertsSurviveReplay) {
  const storage::Schema schema = storage::TwoLongColumns();
  for (int64_t i = 0; i < 25; ++i) {
    ASSERT_TRUE(Run([&](TxnContext& ctx) {
                  uint8_t row[16];
                  schema.SetLong(row, 0, 50000 + i);
                  schema.SetLong(row, 1, i * 11);
                  return ctx.Insert(
                      0, row, index::Key::FromUint64(50000 + i));
                }).ok());
  }
  mcsim::MachineSim fresh(NoTlb());
  auto recovered = Recover(&fresh);
  for (int64_t i = 0; i < 25; ++i) {
    bool found = false;
    EXPECT_EQ(ReadValue(recovered.get(), 50000 + i, &found), i * 11);
    EXPECT_TRUE(found) << i;
  }
}

TEST_P(RecoveryTest, CommittedDeletesSurviveReplay) {
  for (uint64_t key : {7u, 77u, 777u}) {
    ASSERT_TRUE(Run([&](TxnContext& ctx) {
                  storage::RowId rid;
                  Status st =
                      ctx.Probe(0, index::Key::FromUint64(key), &rid);
                  if (!st.ok()) return st;
                  return ctx.Delete(0, rid,
                                    index::Key::FromUint64(key));
                }).ok());
  }
  mcsim::MachineSim fresh(NoTlb());
  auto recovered = Recover(&fresh);
  for (uint64_t key : {7u, 77u, 777u}) {
    bool found = true;
    ReadValue(recovered.get(), key, &found);
    EXPECT_FALSE(found) << key;
  }
  bool found = false;
  ReadValue(recovered.get(), 8, &found);
  EXPECT_TRUE(found);  // neighbors intact
}

TEST_P(RecoveryTest, AbortedTransactionIsInvisibleAfterReplay) {
  // Update row 5, then fail the transaction by probing a missing key:
  // neither live state nor the replayed database may show the update.
  const int64_t poison = 666666;
  const Status s = Run([&](TxnContext& ctx) {
    storage::RowId rid;
    Status st = ctx.Probe(0, index::Key::FromUint64(5), &rid);
    if (!st.ok()) return st;
    st = ctx.Update(0, rid, 1, &poison);
    if (!st.ok()) return st;
    return ctx.Probe(0, index::Key::FromUint64(999999999), &rid);
  });
  ASSERT_FALSE(s.ok());

  bool found = false;
  EXPECT_NE(ReadValue(engine_.get(), 5, &found), poison)
      << "live state leaked an aborted update (undo failed)";
  ASSERT_TRUE(found);

  mcsim::MachineSim fresh(NoTlb());
  auto recovered = Recover(&fresh);
  EXPECT_NE(ReadValue(recovered.get(), 5, &found), poison)
      << "replay applied an uncommitted update";
}

TEST_P(RecoveryTest, AbortedInsertIsRolledBackLive) {
  const storage::Schema schema = storage::TwoLongColumns();
  const Status s = Run([&](TxnContext& ctx) {
    uint8_t row[16];
    schema.SetLong(row, 0, 60000);
    schema.SetLong(row, 1, 1);
    Status st = ctx.Insert(0, row, index::Key::FromUint64(60000));
    if (!st.ok()) return st;
    storage::RowId rid;
    return ctx.Probe(0, index::Key::FromUint64(999999999), &rid);
  });
  ASSERT_FALSE(s.ok());
  bool found = true;
  ReadValue(engine_.get(), 60000, &found);
  EXPECT_FALSE(found) << "aborted insert still probe-able";
}

TEST_P(RecoveryTest, ReplayIsIdempotentOnFreshState) {
  const int64_t v = 4242;
  ASSERT_TRUE(Run([&](TxnContext& ctx) {
                storage::RowId rid;
                Status st =
                    ctx.Probe(0, index::Key::FromUint64(9), &rid);
                if (!st.ok()) return st;
                return ctx.Update(0, rid, 1, &v);
              }).ok());
  mcsim::MachineSim fresh(NoTlb());
  auto recovered = Recover(&fresh);
  // A second REDO pass of pure updates must not change the outcome.
  ASSERT_TRUE(recovered->Replay(engine_->StableLog()).ok());
  bool found = false;
  EXPECT_EQ(ReadValue(recovered.get(), 9, &found), 4242);
}

TEST_P(RecoveryTest, AbortRecordSuppressesInterleavedDelete) {
  // Two committed deletes produce a log of interleaved kDelete/kCommit
  // records. Rewriting the second transaction's kCommit to kAbort must
  // flip exactly that delete to a no-op on replay: recovery's analysis
  // pass trusts the commit/abort records, not the presence of REDO
  // records.
  for (uint64_t key : {7u, 77u}) {
    ASSERT_TRUE(Run([&](TxnContext& ctx) {
                  storage::RowId rid;
                  Status st =
                      ctx.Probe(0, index::Key::FromUint64(key), &rid);
                  if (!st.ok()) return st;
                  return ctx.Delete(0, rid,
                                    index::Key::FromUint64(key));
                }).ok());
  }
  std::vector<txn::LogRecord> log = engine_->StableLog();
  uint64_t aborted_txn = 0;
  for (auto it = log.rbegin(); it != log.rend(); ++it) {
    if (it->op == txn::LogOp::kCommit) {
      it->op = txn::LogOp::kAbort;
      aborted_txn = it->txn_id;
      break;
    }
  }
  ASSERT_NE(aborted_txn, 0u);  // a commit record existed to rewrite
  bool has_delete_for_aborted = false;
  for (const auto& rec : log) {
    if (rec.op == txn::LogOp::kDelete && rec.txn_id == aborted_txn) {
      has_delete_for_aborted = true;
    }
  }
  ASSERT_TRUE(has_delete_for_aborted);

  mcsim::MachineSim fresh(NoTlb());
  auto recovered = CreateEngine(GetParam(), &fresh, EngineOptions());
  ASSERT_TRUE(recovered->CreateDatabase({SimpleTable(kRows)}).ok());
  ASSERT_TRUE(recovered->Replay(log).ok());
  bool found = true;
  ReadValue(recovered.get(), 7, &found);
  EXPECT_FALSE(found) << "committed delete lost";
  found = false;
  ReadValue(recovered.get(), 77, &found);
  EXPECT_TRUE(found) << "aborted delete applied on replay";
}

TEST_P(RecoveryTest, TruncatedMidTransactionDropsUncommittedTail) {
  // Six committed updates, then the log loses its suffix starting at
  // the last commit record — the crash hit mid-transaction from the
  // device's point of view. Replay must apply the five transactions
  // whose commits survived and ignore the commitless tail.
  for (int64_t i = 0; i < 6; ++i) {
    const int64_t v = 7000 + i;
    ASSERT_TRUE(Run([&](TxnContext& ctx) {
                  storage::RowId rid;
                  Status st = ctx.Probe(
                      0, index::Key::FromUint64(200 + i), &rid);
                  if (!st.ok()) return st;
                  return ctx.Update(0, rid, 1, &v);
                }).ok());
  }
  std::vector<txn::LogRecord> log = engine_->StableLog();
  size_t last_commit = log.size();
  for (size_t i = log.size(); i-- > 0;) {
    if (log[i].op == txn::LogOp::kCommit) {
      last_commit = i;
      break;
    }
  }
  ASSERT_LT(last_commit, log.size());
  log.resize(last_commit);  // the tail txn's records lack their commit

  mcsim::MachineSim fresh(NoTlb());
  auto recovered = CreateEngine(GetParam(), &fresh, EngineOptions());
  ASSERT_TRUE(recovered->CreateDatabase({SimpleTable(kRows)}).ok());
  ASSERT_TRUE(recovered->Replay(log).ok());
  for (int64_t i = 0; i < 5; ++i) {
    bool found = false;
    EXPECT_EQ(ReadValue(recovered.get(), 200 + i, &found), 7000 + i);
    EXPECT_TRUE(found) << i;
  }
  bool found = false;
  EXPECT_NE(ReadValue(recovered.get(), 205, &found), 7005)
      << "uncommitted tail transaction applied";
  EXPECT_TRUE(found);  // the row itself still exists, unmodified
}

TEST_P(RecoveryTest, TornRecordEndsTheUsableLog) {
  // A torn write (bad device checksum) ends the usable log: everything
  // committed before it replays, everything after — even with a valid
  // commit record — does not.
  for (int64_t i = 0; i < 4; ++i) {
    const int64_t v = 8000 + i;
    ASSERT_TRUE(Run([&](TxnContext& ctx) {
                  storage::RowId rid;
                  Status st = ctx.Probe(
                      0, index::Key::FromUint64(300 + i), &rid);
                  if (!st.ok()) return st;
                  return ctx.Update(0, rid, 1, &v);
                }).ok());
  }
  std::vector<txn::LogRecord> log = engine_->StableLog();
  size_t commits_seen = 0;
  for (auto& rec : log) {
    if (rec.op == txn::LogOp::kCommit && ++commits_seen == 3) {
      rec.torn = true;  // the third txn's commit reached disk torn
      break;
    }
  }
  ASSERT_EQ(commits_seen, 3u);

  mcsim::MachineSim fresh(NoTlb());
  auto recovered = CreateEngine(GetParam(), &fresh, EngineOptions());
  ASSERT_TRUE(recovered->CreateDatabase({SimpleTable(kRows)}).ok());
  ASSERT_TRUE(recovered->Replay(log).ok());
  for (int64_t i = 0; i < 2; ++i) {
    bool found = false;
    EXPECT_EQ(ReadValue(recovered.get(), 300 + i, &found), 8000 + i);
  }
  for (int64_t i = 2; i < 4; ++i) {
    bool found = false;
    EXPECT_NE(ReadValue(recovered.get(), 300 + i, &found), 8000 + i)
        << "update past the torn record applied";
    EXPECT_TRUE(found);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ReplayableEngines, RecoveryTest, ::testing::ValuesIn(kReplayable),
    [](const ::testing::TestParamInfo<EngineKind>& i) {
      std::string n = EngineKindName(i.param);
      for (char& c : n) {
        if (c == '-' || c == ' ') c = '_';
      }
      return n;
    });

TEST(CommandLogTest, VoltDbLogsCommandsNotPhysicalRecords) {
  mcsim::MachineSim m(NoTlb());
  auto engine =
      CreateEngine(EngineKind::kVoltDb, &m, EngineOptions());
  ASSERT_TRUE(engine->CreateDatabase({SimpleTable(1000)}).ok());
  const int64_t v = 1;
  TxnRequest req;
  ASSERT_TRUE(engine
                  ->Execute(0, req,
                            [&](TxnContext& ctx) {
                              storage::RowId rid;
                              Status st = ctx.Probe(
                                  0, index::Key::FromUint64(3), &rid);
                              if (!st.ok()) return st;
                              return ctx.Update(0, rid, 1, &v);
                            })
                  .ok());
  const auto log = engine->StableLog();
  ASSERT_FALSE(log.empty());
  bool has_command = false;
  for (const auto& rec : log) {
    EXPECT_NE(rec.op, txn::LogOp::kUpdate);  // no physical records
    if (rec.op == txn::LogOp::kCommand) has_command = true;
  }
  EXPECT_TRUE(has_command);
  // Replay skips logical records without failing.
  EXPECT_TRUE(engine->Replay(log).ok());
}

TEST(CommandLogTest, VoltDbToleratesTruncatedAndAbortedCommandLog) {
  // The fifth engine's logical log has no physical REDO content, but
  // recovery must still accept a damaged one: a mid-transaction
  // truncation or an interleaved abort record cannot make Replay fail
  // or corrupt the freshly populated database.
  mcsim::MachineSim m(NoTlb());
  auto engine =
      CreateEngine(EngineKind::kVoltDb, &m, EngineOptions());
  ASSERT_TRUE(engine->CreateDatabase({SimpleTable(1000)}).ok());
  const int64_t v = 5;
  TxnRequest req;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine
                    ->Execute(0, req,
                              [&](TxnContext& ctx) {
                                storage::RowId rid;
                                Status st = ctx.Probe(
                                    0, index::Key::FromUint64(3), &rid);
                                if (!st.ok()) return st;
                                return ctx.Update(0, rid, 1, &v);
                              })
                    .ok());
  }
  std::vector<txn::LogRecord> log = engine->StableLog();
  ASSERT_GE(log.size(), 2u);
  log.resize(log.size() - 1);          // lose the tail mid-transaction
  log.back().op = txn::LogOp::kAbort;  // and interleave an abort record

  mcsim::MachineSim fresh(NoTlb());
  auto recovered =
      CreateEngine(EngineKind::kVoltDb, &fresh, EngineOptions());
  ASSERT_TRUE(recovered->CreateDatabase({SimpleTable(1000)}).ok());
  EXPECT_TRUE(recovered->Replay(log).ok());
  storage::RowId rid;
  TxnRequest probe;
  EXPECT_TRUE(recovered
                  ->Execute(0, probe,
                            [&](TxnContext& ctx) {
                              return ctx.Probe(
                                  0, index::Key::FromUint64(3), &rid);
                            })
                  .ok());
}

}  // namespace
}  // namespace imoltp::engine
