#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "core/experiment.h"
#include "core/microbench.h"
#include "mcsim/machine.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/report_json.h"
#include "obs/span.h"
#include "obs/timeline.h"

namespace imoltp {
namespace {

// ---------------------------------------------------------------- JSON

TEST(JsonWriterTest, RoundTripsThroughParser) {
  obs::JsonWriter w;
  w.BeginObject();
  w.KeyValue("name", "micro \"quoted\" \n tab\t");
  w.KeyValue("count", uint64_t{18446744073709551615ULL});
  w.KeyValue("ipc", 1.25);
  w.KeyValue("neg", int64_t{-42});
  w.KeyValue("flag", true);
  w.Key("nested");
  w.BeginObject();
  w.KeyValue("pi", 3.14159);
  w.EndObject();
  w.Key("arr");
  w.BeginArray();
  w.Value(1);
  w.Value(2.5);
  w.Value("three");
  w.EndArray();
  w.EndObject();

  auto doc = obs::ParseJson(w.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue& v = doc.value();
  EXPECT_EQ(v.FindPath("name")->string, "micro \"quoted\" \n tab\t");
  EXPECT_DOUBLE_EQ(v.FindPath("count")->number, 1.8446744073709552e19);
  EXPECT_DOUBLE_EQ(v.FindPath("ipc")->number, 1.25);
  EXPECT_DOUBLE_EQ(v.FindPath("neg")->number, -42.0);
  EXPECT_TRUE(v.FindPath("flag")->boolean);
  EXPECT_DOUBLE_EQ(v.FindPath("nested.pi")->number, 3.14159);
  ASSERT_EQ(v.FindPath("arr")->array.size(), 3u);
  EXPECT_EQ(v.FindPath("arr")->array[2].string, "three");
  EXPECT_EQ(v.FindPath("no.such.path"), nullptr);
}

TEST(JsonWriterTest, IntegralDoublesPrintWithoutFraction) {
  obs::JsonWriter w;
  w.BeginObject();
  w.KeyValue("cycles", 123456.0);
  w.EndObject();
  EXPECT_NE(w.str().find("\"cycles\":123456"), std::string::npos);
  EXPECT_EQ(w.str().find("123456."), std::string::npos);
}

TEST(JsonParseTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(obs::ParseJson("").ok());
  EXPECT_FALSE(obs::ParseJson("{").ok());
  EXPECT_FALSE(obs::ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(obs::ParseJson("{} trailing").ok());
  EXPECT_FALSE(obs::ParseJson("\"unterminated").ok());
  EXPECT_FALSE(obs::ParseJson("nul").ok());
  EXPECT_TRUE(obs::ParseJson("{}  \n ").ok());
}

TEST(JsonParseTest, RejectsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_FALSE(obs::ParseJson(deep).ok());
}

// ----------------------------------------------------------- histogram

TEST(LatencyHistogramTest, EmptyHistogramIsAllZeros) {
  obs::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleClampsAllPercentiles) {
  obs::LatencyHistogram h;
  h.Add(1000.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 1000.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.p50(), 1000.0);
  EXPECT_DOUBLE_EQ(h.p99(), 1000.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 1000.0);
}

TEST(LatencyHistogramTest, PercentilesAreOrderedAndBracketed) {
  obs::LatencyHistogram h;
  // 90 cheap transactions and 10 expensive stragglers.
  for (int i = 0; i < 90; ++i) h.Add(100.0 + i);
  for (int i = 0; i < 10; ++i) h.Add(50000.0 + i * 1000);
  EXPECT_EQ(h.count(), 100u);
  const double p50 = h.p50(), p90 = h.p90(), p99 = h.p99();
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  EXPECT_GE(p50, h.min());
  // p50 lands among the cheap samples, p99 among the stragglers.
  EXPECT_LT(p50, 1000.0);
  EXPECT_GT(p99, 10000.0);
}

TEST(LatencyHistogramTest, ResetClears) {
  obs::LatencyHistogram h;
  h.Add(42.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(LatencyHistogramTest, BinBoundsAreMonotonic) {
  EXPECT_DOUBLE_EQ(obs::LatencyHistogram::BinLowerBound(0), 0.0);
  for (int i = 1; i < obs::LatencyHistogram::kNumBins; ++i) {
    EXPECT_LT(obs::LatencyHistogram::BinLowerBound(i - 1),
              obs::LatencyHistogram::BinLowerBound(i));
    EXPECT_EQ(obs::LatencyHistogram::BinUpperBound(i - 1),
              obs::LatencyHistogram::BinLowerBound(i));
  }
}

TEST(LatencyHistogramTest, SamplesLandInTheirBin) {
  obs::LatencyHistogram h;
  h.Add(777.0);
  int hits = 0;
  for (int i = 0; i < obs::LatencyHistogram::kNumBins; ++i) {
    if (h.bins()[i] == 0) continue;
    ++hits;
    EXPECT_LE(obs::LatencyHistogram::BinLowerBound(i), 777.0);
    EXPECT_GT(obs::LatencyHistogram::BinUpperBound(i), 777.0);
  }
  EXPECT_EQ(hits, 1);
}

// --------------------------------------------------------------- spans

class SpanTest : public ::testing::Test {
 protected:
  SpanTest() : machine_(Config()), spans_(&machine_.config().cycle) {}

  static mcsim::MachineConfig Config() {
    mcsim::MachineConfig c;
    c.num_cores = 1;
    c.model_tlb = false;
    return c;
  }

  mcsim::MachineSim machine_;
  obs::SpanCollector spans_;
};

TEST_F(SpanTest, RecordsCyclesAndCount) {
  {
    obs::ScopedSpan span(&spans_, &machine_.core(0),
                         obs::SpanKind::kIndexProbe);
    machine_.core(0).Retire(1000);
  }
  const obs::SpanStats& s = spans_.stats(obs::SpanKind::kIndexProbe);
  EXPECT_EQ(s.count, 1u);
  EXPECT_GT(s.cycles, 0.0);
  EXPECT_DOUBLE_EQ(spans_.total_cycles(), s.cycles);
}

TEST_F(SpanTest, InnerSpanRecordsNothing) {
  {
    obs::ScopedSpan outer(&spans_, &machine_.core(0),
                          obs::SpanKind::kStorageAccess);
    machine_.core(0).Retire(500);
    {
      obs::ScopedSpan inner(&spans_, &machine_.core(0),
                            obs::SpanKind::kLogAppend);
      machine_.core(0).Retire(500);
    }
  }
  // The outer span owns all 1000 instructions; the inner one is a no-op,
  // so nothing is double-counted.
  EXPECT_EQ(spans_.stats(obs::SpanKind::kLogAppend).count, 0u);
  EXPECT_DOUBLE_EQ(spans_.stats(obs::SpanKind::kLogAppend).cycles, 0.0);
  EXPECT_EQ(spans_.stats(obs::SpanKind::kStorageAccess).count, 1u);
}

TEST_F(SpanTest, DisabledCoreIsNoOp) {
  machine_.core(0).set_enabled(false);
  {
    obs::ScopedSpan span(&spans_, &machine_.core(0),
                         obs::SpanKind::kLockAcquire);
    machine_.core(0).Retire(1000);
  }
  EXPECT_EQ(spans_.stats(obs::SpanKind::kLockAcquire).count, 0u);
}

TEST_F(SpanTest, NullCollectorIsNoOp) {
  obs::ScopedSpan span(nullptr, &machine_.core(0),
                       obs::SpanKind::kLockAcquire);
  machine_.core(0).Retire(10);
  // Destructor must not crash; nothing to assert beyond surviving.
}

TEST_F(SpanTest, ResetZeroesStats) {
  {
    obs::ScopedSpan span(&spans_, &machine_.core(0),
                         obs::SpanKind::kIndexProbe);
    machine_.core(0).Retire(100);
  }
  spans_.Reset();
  EXPECT_DOUBLE_EQ(spans_.total_cycles(), 0.0);
  EXPECT_EQ(spans_.stats(obs::SpanKind::kIndexProbe).count, 0u);
}

// ----------------------------------------- end-to-end reconciliation

// Small enough that the LLC amplification sits at its floor for every
// span and for the window, keeping the cycle model effectively linear —
// the precondition for span cycles reconciling against the window total.
core::ExperimentConfig SmallConfig() {
  core::ExperimentConfig cfg;
  cfg.engine = engine::EngineKind::kVoltDb;
  cfg.num_workers = 2;
  cfg.warmup_txns = 100;
  cfg.measure_txns = 400;
  cfg.seed = 7;
  return cfg;
}

core::MicroConfig SmallMicro() {
  core::MicroConfig mcfg;
  mcfg.nominal_bytes = 1ULL << 20;  // 1MB: fits in LLC
  mcfg.num_partitions = 2;
  return mcfg;
}

TEST(ObsEndToEndTest, SpansAndLatencyReconcileWithWindow) {
  core::ExperimentConfig cfg = SmallConfig();
  core::MicroConfig mcfg = SmallMicro();
  core::MicroBenchmark wl(mcfg);
  auto created = core::ExperimentRunner::Create(cfg, &wl);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  core::ExperimentRunner& runner = **created;
  const mcsim::WindowReport report = runner.Run(&wl).value();

  // Histogram: one sample per (worker, measured transaction).
  const obs::LatencyHistogram& lat = runner.latency_histogram();
  EXPECT_EQ(lat.count(), cfg.measure_txns * cfg.num_workers);
  EXPECT_GT(lat.min(), 0.0);
  EXPECT_LE(lat.p50(), lat.p90());
  EXPECT_LE(lat.p90(), lat.p99());
  EXPECT_LE(lat.p99(), lat.max());

  // Spans: strictly within the profiled window, so their sum cannot
  // exceed the window's total cycles (report.cycles is per worker).
  const obs::SpanCollector& spans = runner.spans();
  const double window_total = report.cycles * report.num_workers;
  EXPECT_GT(spans.total_cycles(), 0.0);
  EXPECT_LE(spans.total_cycles(), window_total);
  // The micro-benchmark probes an index every transaction.
  EXPECT_GT(spans.stats(obs::SpanKind::kIndexProbe).count, 0u);
}

TEST(ObsEndToEndTest, RunReportJsonHasRequiredMetrics) {
  core::ExperimentConfig cfg = SmallConfig();
  core::MicroConfig mcfg = SmallMicro();
  core::MicroBenchmark wl(mcfg);
  auto created = core::ExperimentRunner::Create(cfg, &wl);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  core::ExperimentRunner& runner = **created;
  const mcsim::WindowReport report = runner.Run(&wl).value();

  obs::RunInfo info;
  info.engine = "voltdb";
  info.workload = "micro";
  info.db_bytes = mcfg.nominal_bytes;
  info.workers = cfg.num_workers;
  info.measure_txns = cfg.measure_txns;
  info.seed = cfg.seed;
  const std::string json = obs::RunReportToJson(
      info, report, runner.machine()->config().cycle,
      &runner.latency_histogram(), &runner.spans());

  auto doc = obs::ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue& v = doc.value();
  EXPECT_DOUBLE_EQ(v.FindPath("schema_version")->number,
                   obs::kReportSchemaVersion);
  EXPECT_EQ(v.FindPath("meta.engine")->string, "voltdb");
  for (const char* path :
       {"window.ipc", "window.instructions_per_txn",
        "window.cycles_per_txn", "window.stalls_per_kinstr.total",
        "window.stalls_per_txn.total", "window.misses.llc_d",
        "window.engine_cycle_fraction",
        "window.cycle_accounting.retiring_fraction",
        "latency_cycles.p50", "latency_cycles.p90", "latency_cycles.p99",
        "spans.index-probe.cycles", "spans.total_cycles"}) {
    const obs::JsonValue* node = v.FindPath(path);
    ASSERT_NE(node, nullptr) << "missing " << path;
    EXPECT_TRUE(node->is_number()) << path;
  }
  // Module breakdown is an object keyed by module name.
  const obs::JsonValue* modules = v.FindPath("window.module_breakdown");
  ASSERT_NE(modules, nullptr);
  EXPECT_TRUE(modules->is_object());
  EXPECT_FALSE(modules->object.empty());
  // IPC in the JSON matches the report bit for bit.
  EXPECT_DOUBLE_EQ(v.FindPath("window.ipc")->number, report.ipc);
}

// ------------------------------------------------------------ timeline

TEST(TimelineRecorderTest, LaneCapacityBoundsMemory) {
  obs::TimelineRecorder recorder(/*num_cores=*/1,
                                 /*capacity_per_core=*/2);
  recorder.Record(0, obs::SpanKind::kIndexProbe, 0.0, 10.0);
  recorder.Record(0, obs::SpanKind::kLogAppend, 10.0, 20.0);
  recorder.Record(0, obs::SpanKind::kLockAcquire, 20.0, 30.0);
  EXPECT_EQ(recorder.events(0).size(), 2u);
  EXPECT_EQ(recorder.dropped(0), 1u);

  recorder.Reset();
  EXPECT_TRUE(recorder.events(0).empty());
  EXPECT_EQ(recorder.dropped(0), 0u);
}

TEST(TimelineRecorderTest, OutOfRangeCoreFoldsToLaneZero) {
  obs::TimelineRecorder recorder(/*num_cores=*/2);
  recorder.Record(7, obs::SpanKind::kIndexProbe, 0.0, 1.0);
  EXPECT_EQ(recorder.events(0).size(), 1u);
  EXPECT_TRUE(recorder.events(1).empty());
}

/// A two-bucket, one-core sampled report for the export tests.
mcsim::WindowReport SampledReport() {
  mcsim::WindowReport r;
  r.sample_every = 100;
  mcsim::CoreSeries series;
  series.core = 0;
  for (int i = 0; i < 2; ++i) {
    mcsim::SeriesBucket b;
    b.t0 = 100.0 * i;
    b.t1 = 100.0 * (i + 1);
    b.instructions = 300;
    b.ipc = 1.5;
    series.buckets.push_back(b);
  }
  r.timeseries.push_back(std::move(series));
  return r;
}

TEST(TimelineTest, ExportValidatesAndCountsEvents) {
  obs::TimelineRecorder recorder(/*num_cores=*/2);
  recorder.Record(0, obs::SpanKind::kIndexProbe, 1000.0, 1200.0);
  recorder.Record(0, obs::SpanKind::kStorageAccess, 1200.0, 1500.0);
  recorder.Record(1, obs::SpanKind::kLogAppend, 1100.0, 1400.0);

  obs::TimelineOptions opts;
  opts.engine = "voltdb";
  opts.workload = "micro";
  const std::string json =
      obs::TimelineToJson(opts, SampledReport(), &recorder);

  uint64_t spans = 0;
  uint64_t counters = 0;
  const Status s = obs::ValidateTimelineJson(json, &spans, &counters);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(spans, 3u);
  // Three counter tracks (ipc, stalls/kinstr, abort rate) per bucket.
  EXPECT_EQ(counters, 6u);

  auto doc = obs::ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue& v = doc.value();
  EXPECT_EQ(v.FindPath("metadata.engine")->string, "voltdb");
  EXPECT_EQ(v.FindPath("metadata.workload")->string, "micro");
  EXPECT_DOUBLE_EQ(v.FindPath("metadata.sample_every")->number, 100.0);
  ASSERT_NE(v.FindPath("traceEvents"), nullptr);
  EXPECT_TRUE(v.FindPath("traceEvents")->is_array());
}

TEST(TimelineTest, SpanTimestampsNormalizeToTheEarliestEvent) {
  // Spans arrive in cumulative machine time (warm-up included); the
  // export must shift them so the window starts near t=0.
  obs::TimelineRecorder recorder(/*num_cores=*/1);
  recorder.Record(0, obs::SpanKind::kIndexProbe, 500000.0, 500200.0);
  recorder.Record(0, obs::SpanKind::kLogAppend, 500200.0, 500600.0);

  obs::TimelineOptions opts;
  const std::string json =
      obs::TimelineToJson(opts, mcsim::WindowReport{}, &recorder);
  auto doc = obs::ParseJson(json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();

  double min_ts = 1e300;
  for (const obs::JsonValue& e : doc.value().FindPath("traceEvents")->array) {
    const obs::JsonValue* ph = e.Find("ph");
    if (ph == nullptr || ph->string != "X") continue;
    min_ts = std::min(min_ts, e.Find("ts")->number);
  }
  EXPECT_DOUBLE_EQ(min_ts, 0.0);
}

TEST(TimelineTest, NullRecorderStillEmitsCounterTracks) {
  obs::TimelineOptions opts;
  const std::string json =
      obs::TimelineToJson(opts, SampledReport(), nullptr);
  uint64_t spans = 0;
  uint64_t counters = 0;
  ASSERT_TRUE(obs::ValidateTimelineJson(json, &spans, &counters).ok());
  EXPECT_EQ(spans, 0u);
  EXPECT_GT(counters, 0u);
}

TEST(TimelineValidateTest, RejectsContractViolations) {
  // Not JSON at all.
  EXPECT_FALSE(obs::ValidateTimelineJson("not json").ok());
  // Missing / mistyped traceEvents.
  EXPECT_FALSE(obs::ValidateTimelineJson("{}").ok());
  EXPECT_FALSE(obs::ValidateTimelineJson("{\"traceEvents\":5}").ok());
  // Event without a phase.
  EXPECT_FALSE(obs::ValidateTimelineJson(
                   "{\"traceEvents\":[{\"name\":\"x\"}]}")
                   .ok());
  // Complete event without a duration.
  EXPECT_FALSE(
      obs::ValidateTimelineJson(
          "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"x\",\"ts\":1}]}")
          .ok());
  // Counter event without args.
  EXPECT_FALSE(
      obs::ValidateTimelineJson(
          "{\"traceEvents\":[{\"ph\":\"C\",\"name\":\"x\",\"ts\":1}]}")
          .ok());
  // Minimal valid documents pass.
  EXPECT_TRUE(obs::ValidateTimelineJson("{\"traceEvents\":[]}").ok());
  EXPECT_TRUE(
      obs::ValidateTimelineJson(
          "{\"traceEvents\":[{\"ph\":\"M\",\"name\":\"process_name\"}]}")
          .ok());
}

TEST(TimelineEndToEndTest, ExperimentTimelineValidates) {
  // The full imoltp_run wiring: sampler armed, recorder attached to the
  // engine's span collector, export validated — the same check CI runs
  // on a freshly emitted timeline.
  core::ExperimentConfig cfg = SmallConfig();
  cfg.sampler.every_cycles = 2000;
  core::MicroConfig mcfg = SmallMicro();
  core::MicroBenchmark wl(mcfg);
  auto created = core::ExperimentRunner::Create(cfg, &wl);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  core::ExperimentRunner& runner = **created;

  obs::TimelineRecorder recorder(cfg.num_workers);
  runner.engine()->span_collector()->set_recorder(&recorder);
  const auto run = runner.Run(&wl);
  runner.engine()->span_collector()->set_recorder(nullptr);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  obs::TimelineOptions opts;
  opts.engine = "voltdb";
  opts.workload = "micro";
  const std::string json = obs::TimelineToJson(opts, *run, &recorder);

  uint64_t spans = 0;
  uint64_t counters = 0;
  const Status s = obs::ValidateTimelineJson(json, &spans, &counters);
  ASSERT_TRUE(s.ok()) << s.ToString();
  // The micro-benchmark probes an index on every transaction, and the
  // sampled window produced counter buckets for both cores.
  EXPECT_GT(spans, 0u);
  EXPECT_GT(counters, 0u);
  ASSERT_EQ(run->timeseries.size(), 2u);
}

}  // namespace
}  // namespace imoltp
