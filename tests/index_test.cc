#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "index/art.h"
#include "index/btree.h"
#include "index/hash_index.h"
#include "index/index.h"
#include "mcsim/machine.h"

namespace imoltp::index {
namespace {

mcsim::MachineConfig NoTlb() {
  mcsim::MachineConfig c;
  c.model_tlb = false;
  return c;
}

// ---------------------------------------------------------------------------
// Key
// ---------------------------------------------------------------------------

TEST(KeyTest, Uint64RoundTrip) {
  const Key k = Key::FromUint64(0x0123456789abcdefULL);
  EXPECT_EQ(k.size(), 8u);
  EXPECT_EQ(k.AsUint64(), 0x0123456789abcdefULL);
}

TEST(KeyTest, BigEndianEncodingPreservesNumericOrder) {
  for (uint64_t a : {0ULL, 1ULL, 255ULL, 256ULL, 1ULL << 32, ~0ULL}) {
    for (uint64_t b : {0ULL, 2ULL, 257ULL, 1ULL << 33}) {
      const int cmp = Key::FromUint64(a).Compare(Key::FromUint64(b));
      if (a < b) {
        EXPECT_LT(cmp, 0) << a << " vs " << b;
      } else if (a == b) {
        EXPECT_EQ(cmp, 0);
      } else {
        EXPECT_GT(cmp, 0) << a << " vs " << b;
      }
    }
  }
}

TEST(KeyTest, ByteKeysCompareLikeMemcmpThenLength) {
  const Key ab = Key::FromBytes("ab", 2);
  const Key abc = Key::FromBytes("abc", 3);
  const Key b = Key::FromBytes("b", 1);
  EXPECT_LT(ab.Compare(abc), 0);
  EXPECT_LT(abc.Compare(b), 0);
  EXPECT_EQ(ab.Compare(Key::FromBytes("ab", 2)), 0);
}

TEST(KeyTest, HashIsStable) {
  EXPECT_EQ(Key::FromUint64(42).Hash(), Key::FromUint64(42).Hash());
  EXPECT_NE(Key::FromUint64(42).Hash(), Key::FromUint64(43).Hash());
}

TEST(KeyTest, ComposeOrdersByLeadingComponent) {
  EXPECT_LT(Compose2(1, 500, 16), Compose2(2, 0, 16));
  EXPECT_LT(Compose3(1, 9, 4, 100, 24), Compose3(1, 10, 4, 0, 24));
}

// ---------------------------------------------------------------------------
// Cross-structure conformance: every index obeys the same contract.
// ---------------------------------------------------------------------------

struct IndexCase {
  IndexKind kind;
  uint32_t key_bytes;
};

class IndexConformanceTest : public ::testing::TestWithParam<IndexCase> {
 protected:
  IndexConformanceTest()
      : machine_(NoTlb()),
        core_(&machine_.core(0)),
        index_(CreateIndex(GetParam().kind, GetParam().key_bytes)) {}

  Key K(uint64_t id) const {
    if (GetParam().key_bytes == 8) return Key::FromUint64(id);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%049llu",
                  static_cast<unsigned long long>(id));
    return Key::FromBytes(buf, 50);
  }

  mcsim::MachineSim machine_;
  mcsim::CoreSim* core_;
  std::unique_ptr<Index> index_;
};

TEST_P(IndexConformanceTest, EmptyLookupFails) {
  uint64_t v;
  EXPECT_FALSE(index_->Lookup(core_, K(1), &v));
  EXPECT_EQ(index_->size(), 0u);
}

TEST_P(IndexConformanceTest, InsertLookupRoundTrip) {
  ASSERT_TRUE(index_->Insert(core_, K(10), 100).ok());
  uint64_t v = 0;
  ASSERT_TRUE(index_->Lookup(core_, K(10), &v));
  EXPECT_EQ(v, 100u);
  EXPECT_FALSE(index_->Lookup(core_, K(11), &v));
  EXPECT_EQ(index_->size(), 1u);
}

TEST_P(IndexConformanceTest, DuplicateInsertRejected) {
  ASSERT_TRUE(index_->Insert(core_, K(5), 1).ok());
  const Status s = index_->Insert(core_, K(5), 2);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  uint64_t v = 0;
  ASSERT_TRUE(index_->Lookup(core_, K(5), &v));
  EXPECT_EQ(v, 1u);  // original value kept
  EXPECT_EQ(index_->size(), 1u);
}

TEST_P(IndexConformanceTest, RemoveThenLookupFails) {
  ASSERT_TRUE(index_->Insert(core_, K(5), 1).ok());
  EXPECT_TRUE(index_->Remove(core_, K(5)));
  uint64_t v;
  EXPECT_FALSE(index_->Lookup(core_, K(5), &v));
  EXPECT_FALSE(index_->Remove(core_, K(5)));
  EXPECT_EQ(index_->size(), 0u);
}

TEST_P(IndexConformanceTest, SequentialBulkThenProbeAll) {
  constexpr uint64_t kN = 20000;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(index_->Insert(core_, K(i), i * 2).ok()) << i;
  }
  EXPECT_EQ(index_->size(), kN);
  uint64_t v = 0;
  for (uint64_t i = 0; i < kN; i += 37) {
    ASSERT_TRUE(index_->Lookup(core_, K(i), &v)) << i;
    ASSERT_EQ(v, i * 2);
  }
  EXPECT_FALSE(index_->Lookup(core_, K(kN), &v));
}

TEST_P(IndexConformanceTest, RandomizedOpsMatchStdMapOracle) {
  std::map<uint64_t, uint64_t> oracle;
  Rng rng(GetParam().key_bytes * 1000 +
          static_cast<uint64_t>(GetParam().kind));
  for (int step = 0; step < 30000; ++step) {
    const uint64_t id = rng.Uniform(4000);
    const int op = static_cast<int>(rng.Uniform(10));
    if (op < 5) {  // insert
      const uint64_t value = rng.Next() >> 1;
      const bool existed = oracle.count(id) > 0;
      const Status s = index_->Insert(core_, K(id), value);
      ASSERT_EQ(s.ok(), !existed) << "step " << step << " id " << id;
      if (!existed) oracle[id] = value;
    } else if (op < 8) {  // lookup
      uint64_t v = 0;
      const bool found = index_->Lookup(core_, K(id), &v);
      auto it = oracle.find(id);
      ASSERT_EQ(found, it != oracle.end()) << "step " << step;
      if (found) {
        ASSERT_EQ(v, it->second);
      }
    } else {  // remove
      const bool removed = index_->Remove(core_, K(id));
      ASSERT_EQ(removed, oracle.erase(id) > 0) << "step " << step;
    }
    ASSERT_EQ(index_->size(), oracle.size());
  }
}

TEST_P(IndexConformanceTest, OrderedScanMatchesOracle) {
  if (!index_->ordered()) GTEST_SKIP() << "unordered structure";
  std::map<uint64_t, uint64_t> oracle;
  Rng rng(99);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t id = rng.Uniform(100000);
    if (index_->Insert(core_, K(id), id + 7).ok()) oracle[id] = id + 7;
  }
  for (uint64_t from : {0ULL, 777ULL, 50000ULL, 99999ULL}) {
    std::vector<uint64_t> got;
    index_->Scan(core_, K(from), 100, &got);
    std::vector<uint64_t> want;
    for (auto it = oracle.lower_bound(from);
         it != oracle.end() && want.size() < 100; ++it) {
      want.push_back(it->second);
    }
    ASSERT_EQ(got, want) << "scan from " << from;
  }
}

TEST_P(IndexConformanceTest, ScanAfterRemovalsSkipsDeleted) {
  if (!index_->ordered()) GTEST_SKIP() << "unordered structure";
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(index_->Insert(core_, K(i), i).ok());
  }
  for (uint64_t i = 0; i < 100; i += 2) {
    ASSERT_TRUE(index_->Remove(core_, K(i)));
  }
  std::vector<uint64_t> got;
  index_->Scan(core_, K(0), 1000, &got);
  ASSERT_EQ(got.size(), 50u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], 2 * i + 1);
  }
}

TEST_P(IndexConformanceTest, TracesMemoryThroughTheCore) {
  const uint64_t before = core_->counters().data_accesses;
  ASSERT_TRUE(index_->Insert(core_, K(1), 1).ok());
  uint64_t v;
  index_->Lookup(core_, K(1), &v);
  EXPECT_GT(core_->counters().data_accesses, before);
  EXPECT_GT(core_->counters().instructions, 0u);
}

std::string CaseName(const ::testing::TestParamInfo<IndexCase>& info) {
  std::string name = std::string(IndexKindName(info.param.kind)) + "_" +
                     std::to_string(info.param.key_bytes) + "b";
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllIndexes, IndexConformanceTest,
    ::testing::Values(IndexCase{IndexKind::kBTree8K, 8},
                      IndexCase{IndexKind::kBTreeCacheline, 8},
                      IndexCase{IndexKind::kBTreeCc, 8},
                      IndexCase{IndexKind::kArt, 8},
                      IndexCase{IndexKind::kHash, 8},
                      IndexCase{IndexKind::kBTree8K, 50},
                      IndexCase{IndexKind::kBTreeCacheline, 50},
                      IndexCase{IndexKind::kArt, 50},
                      IndexCase{IndexKind::kHash, 50}),
    CaseName);

// ---------------------------------------------------------------------------
// Structure-specific behavior
// ---------------------------------------------------------------------------

TEST(BTreeTest, HeightGrowsLogarithmically) {
  mcsim::MachineSim m(NoTlb());
  BTree t(256, 8, IndexKind::kBTreeCc);
  EXPECT_EQ(t.height(), 1u);
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_TRUE(t.Insert(&m.core(0), Key::FromUint64(i), i).ok());
  }
  EXPECT_GE(t.height(), 3u);
  EXPECT_LE(t.height(), 8u);
}

TEST(BTreeTest, LargeNodesMakeShallowTrees) {
  mcsim::MachineSim m(NoTlb());
  BTree big(8192, 8, IndexKind::kBTree8K);
  BTree small(256, 8, IndexKind::kBTreeCc);
  for (uint64_t i = 0; i < 50000; ++i) {
    ASSERT_TRUE(big.Insert(&m.core(0), Key::FromUint64(i), i).ok());
    ASSERT_TRUE(small.Insert(&m.core(0), Key::FromUint64(i), i).ok());
  }
  EXPECT_LT(big.height(), small.height());
}

TEST(BTreeTest, ReverseInsertionOrderWorks) {
  mcsim::MachineSim m(NoTlb());
  BTree t(512, 8, IndexKind::kBTreeCacheline);
  for (uint64_t i = 5000; i > 0; --i) {
    ASSERT_TRUE(t.Insert(&m.core(0), Key::FromUint64(i), i).ok());
  }
  std::vector<uint64_t> got;
  t.Scan(&m.core(0), Key::FromUint64(0), 10, &got);
  ASSERT_EQ(got.size(), 10u);
  EXPECT_EQ(got.front(), 1u);
}

TEST(ArtTest, DensePrefixesCompress) {
  mcsim::MachineSim m(NoTlb());
  Art art(8);
  // Dense low keys share a long common prefix (high bytes are zero).
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(art.Insert(&m.core(0), Key::FromUint64(i), i).ok());
  }
  uint64_t v;
  ASSERT_TRUE(art.Lookup(&m.core(0), Key::FromUint64(999), &v));
  EXPECT_EQ(v, 999u);
}

TEST(ArtTest, SparseKeysSplitPrefixes) {
  mcsim::MachineSim m(NoTlb());
  Art art(8);
  Rng rng(5);
  std::map<uint64_t, uint64_t> oracle;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t k = rng.Next();
    if (art.Insert(&m.core(0), Key::FromUint64(k), i).ok()) {
      oracle[k] = i;
    }
  }
  for (const auto& [k, val] : oracle) {
    uint64_t v;
    ASSERT_TRUE(art.Lookup(&m.core(0), Key::FromUint64(k), &v));
    ASSERT_EQ(v, val);
  }
}

TEST(ArtTest, NodeGrowthThroughAllArities) {
  mcsim::MachineSim m(NoTlb());
  Art art(8);
  // 256 children under one byte position forces 4 -> 16 -> 48 -> 256.
  for (uint64_t b = 0; b < 256; ++b) {
    ASSERT_TRUE(art.Insert(&m.core(0), Key::FromUint64(b << 8), b).ok());
  }
  uint64_t v;
  for (uint64_t b = 0; b < 256; ++b) {
    ASSERT_TRUE(art.Lookup(&m.core(0), Key::FromUint64(b << 8), &v));
    ASSERT_EQ(v, b);
  }
}

TEST(HashIndexTest, DirectoryGrowsWithLoad) {
  mcsim::MachineSim m(NoTlb());
  HashIndex h(8, 16);
  const uint64_t buckets_before = h.num_buckets();
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(h.Insert(&m.core(0), Key::FromUint64(i), i).ok());
  }
  EXPECT_GT(h.num_buckets(), buckets_before);
  uint64_t v;
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(h.Lookup(&m.core(0), Key::FromUint64(i), &v));
    ASSERT_EQ(v, i);
  }
}

TEST(HashIndexTest, ScanReturnsNothing) {
  mcsim::MachineSim m(NoTlb());
  HashIndex h(8);
  h.Insert(&m.core(0), Key::FromUint64(1), 1);
  std::vector<uint64_t> out;
  EXPECT_EQ(h.Scan(&m.core(0), Key::FromUint64(0), 10, &out), 0u);
  EXPECT_FALSE(h.ordered());
}

TEST(IndexDataLocalityTest, BTreeTouchesMoreLinesPerProbeThanHash) {
  // The paper's Section 6.1 mechanism: B-trees traverse the whole index
  // per probe; the hash index goes straight to one bucket.
  mcsim::MachineSim mb(NoTlb()), mh(NoTlb());
  BTree btree(8192, 8, IndexKind::kBTree8K);
  HashIndex hash(8);
  for (uint64_t i = 0; i < 100000; ++i) {
    ASSERT_TRUE(btree.Insert(&mb.core(0), Key::FromUint64(i), i).ok());
    ASSERT_TRUE(hash.Insert(&mh.core(0), Key::FromUint64(i), i).ok());
  }
  const uint64_t b0 = mb.core(0).counters().data_accesses;
  const uint64_t h0 = mh.core(0).counters().data_accesses;
  Rng rng(3);
  uint64_t v;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t k = rng.Uniform(100000);
    btree.Lookup(&mb.core(0), Key::FromUint64(k), &v);
    hash.Lookup(&mh.core(0), Key::FromUint64(k), &v);
  }
  const uint64_t btree_lines = mb.core(0).counters().data_accesses - b0;
  const uint64_t hash_lines = mh.core(0).counters().data_accesses - h0;
  EXPECT_GT(btree_lines, 2 * hash_lines);
}

}  // namespace
}  // namespace imoltp::index
