// Trace subsystem: encoding primitives, header round-trip, config
// specs, and the property the whole design hangs on — a replayed trace
// reproduces the live run's counters bit for bit, for every engine,
// worker count, and database scale.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/experiment.h"
#include "core/microbench.h"
#include "trace/format.h"
#include "trace/meta.h"
#include "trace/reader.h"
#include "trace/record.h"
#include "trace/replay.h"

namespace imoltp::trace {
namespace {

std::string TmpPath(const std::string& name) {
  return testing::TempDir() + "imoltp_trace_test_" + name + ".trace";
}

TEST(TraceFormatTest, VarintRoundTrip) {
  const uint64_t values[] = {0,
                             1,
                             0x7F,
                             0x80,
                             0x3FFF,
                             0x4000,
                             1234567,
                             0xFFFFFFFFull,
                             0x123456789ABCDEFull,
                             UINT64_MAX};
  std::string buf;
  for (uint64_t v : values) PutVarint(&buf, v);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
  const uint8_t* end = p + buf.size();
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint(&p, end, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(p, end);
}

TEST(TraceFormatTest, VarintTruncationDetected) {
  std::string buf;
  PutVarint(&buf, UINT64_MAX);  // 10 bytes
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
    uint64_t got = 0;
    EXPECT_FALSE(GetVarint(&p, p + cut, &got)) << "cut=" << cut;
  }
}

TEST(TraceFormatTest, ZigzagRoundTrip) {
  const int64_t values[] = {0,  1,  -1,        63,       -64, 12345,
                            -12345, INT64_MAX, INT64_MIN};
  for (int64_t v : values) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
}

TEST(TraceFormatTest, DoubleRoundTripsBitExactly) {
  const double values[] = {0.0, -0.0, 1.0, 0.1, 1e300, -1e-300, 3.75};
  for (double v : values) {
    std::string buf;
    PutDouble(&buf, v);
    const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
    double got = 0;
    ASSERT_TRUE(GetDouble(&p, p + buf.size(), &got));
    EXPECT_EQ(std::memcmp(&got, &v, sizeof(v)), 0);
  }
}

TEST(TraceFormatTest, Crc32KnownVector) {
  // The standard check value for CRC-32/ISO-HDLC ("123456789").
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
}

TEST(TraceFormatTest, Crc32SlicedPathMatchesBytewise) {
  // An input long enough for the slicing-by-8 fast path plus an odd
  // tail, checked against an independent byte-at-a-time computation.
  std::string input(1031, '\0');
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<char>((i * 131) ^ (i >> 3));
  }
  uint32_t slow = 0xFFFFFFFFu;
  for (char c : input) {
    slow ^= static_cast<uint8_t>(c);
    for (int k = 0; k < 8; ++k) {
      slow = (slow & 1) ? 0xEDB88320u ^ (slow >> 1) : slow >> 1;
    }
  }
  slow ^= 0xFFFFFFFFu;
  EXPECT_EQ(Crc32(input.data(), input.size()), slow);
}

TEST(TraceMetaTest, JsonRoundTrip) {
  TraceMeta meta;
  meta.trace_id = "deadbeef01234567";
  meta.engine = "voltdb";
  meta.workload = "micro-ro";
  meta.num_workers = 4;
  meta.seed = 42;
  meta.warmup_txns = 100;
  meta.measure_txns = 400;
  meta.db_bytes = 100ULL << 30;
  meta.rows = 10;
  meta.warehouses = 8;
  meta.recorded_config.num_cores = 4;
  meta.recorded_config.llc.size_bytes = 2 << 20;
  meta.recorded_config.model_prefetcher = true;
  meta.recorded_config.cycle.base_cpi = 0.625;
  mcsim::ModuleInfo m;
  m.name = "btree";
  m.inside_engine = true;
  meta.modules.push_back(m);

  TraceMeta got;
  ASSERT_TRUE(TraceMetaFromJson(TraceMetaToJson(meta), &got).ok());
  EXPECT_EQ(got.trace_id, meta.trace_id);
  EXPECT_EQ(got.engine, meta.engine);
  EXPECT_EQ(got.workload, meta.workload);
  EXPECT_EQ(got.num_workers, meta.num_workers);
  EXPECT_EQ(got.seed, meta.seed);
  EXPECT_EQ(got.warmup_txns, meta.warmup_txns);
  EXPECT_EQ(got.measure_txns, meta.measure_txns);
  EXPECT_EQ(got.db_bytes, meta.db_bytes);
  EXPECT_EQ(got.rows, meta.rows);
  EXPECT_EQ(got.warehouses, meta.warehouses);
  EXPECT_EQ(got.recorded_config.num_cores, 4);
  EXPECT_EQ(got.recorded_config.llc.size_bytes, 2u << 20);
  EXPECT_TRUE(got.recorded_config.model_prefetcher);
  EXPECT_DOUBLE_EQ(got.recorded_config.cycle.base_cpi, 0.625);
  ASSERT_EQ(got.modules.size(), 1u);
  EXPECT_EQ(got.modules[0].name, "btree");
  EXPECT_TRUE(got.modules[0].inside_engine);
}

TEST(ConfigSpecTest, ParsesSizesAndToggles) {
  mcsim::MachineConfig c;
  ASSERT_TRUE(ApplyConfigSpec(
                  "llc=2MB,l1d=16KB,pf=on,pfdeg=4,tlb=off,line=128", &c)
                  .ok());
  EXPECT_EQ(c.llc.size_bytes, 2u << 20);
  EXPECT_EQ(c.l1d.size_bytes, 16u << 10);
  EXPECT_TRUE(c.model_prefetcher);
  EXPECT_EQ(c.prefetch_degree, 4u);
  EXPECT_FALSE(c.model_tlb);
  EXPECT_EQ(c.l1i.line_bytes, 128u);
  EXPECT_EQ(c.llc.line_bytes, 128u);
}

TEST(ConfigSpecTest, EmptyAndRecordedAreNoOps) {
  mcsim::MachineConfig base;
  mcsim::MachineConfig c = base;
  ASSERT_TRUE(ApplyConfigSpec("", &c).ok());
  ASSERT_TRUE(ApplyConfigSpec("recorded", &c).ok());
  EXPECT_EQ(c.llc.size_bytes, base.llc.size_bytes);
}

TEST(ConfigSpecTest, RejectsMalformedSpecs) {
  mcsim::MachineConfig c;
  EXPECT_FALSE(ApplyConfigSpec("bogus=1", &c).ok());
  EXPECT_FALSE(ApplyConfigSpec("llc=", &c).ok());
  EXPECT_FALSE(ApplyConfigSpec("llc=-2MB", &c).ok());
  EXPECT_FALSE(ApplyConfigSpec("=2MB", &c).ok());
  EXPECT_FALSE(ApplyConfigSpec("pf=maybe", &c).ok());
  EXPECT_FALSE(ApplyConfigSpec("line=100", &c).ok());  // not a power of 2
  EXPECT_FALSE(ApplyConfigSpec("line=8", &c).ok());    // below minimum
  EXPECT_FALSE(ApplyConfigSpec("base_cpi=abc", &c).ok());
}

// --- Round-trip determinism -------------------------------------------

core::ExperimentConfig FastConfig(engine::EngineKind kind, int workers) {
  core::ExperimentConfig cfg;
  cfg.engine = kind;
  cfg.num_workers = workers;
  cfg.warmup_txns = 50;
  cfg.measure_txns = 150;
  cfg.seed = 7;
  return cfg;
}

void ExpectBitIdenticalRoundTrip(engine::EngineKind kind,
                                 const char* tag, uint64_t nominal_bytes,
                                 uint64_t max_resident_rows,
                                 int workers) {
  core::MicroConfig mcfg;
  mcfg.nominal_bytes = nominal_bytes;
  mcfg.max_resident_rows = max_resident_rows;
  core::MicroBenchmark wl(mcfg);
  const std::string path = TmpPath(tag);

  RecordResult live;
  ASSERT_TRUE(RecordExperiment(FastConfig(kind, workers), &wl, path,
                               nominal_bytes, 0, 0, &live)
                  .ok());
  EXPECT_GT(live.events, 0u);
  EXPECT_FALSE(live.trace_id.empty());

  ReplayResult replay;
  ASSERT_TRUE(ReplayTraceRecorded(path, &replay).ok());
  EXPECT_EQ(replay.events, live.events);
  EXPECT_TRUE(replay.has_window);
  ASSERT_EQ(replay.counters.size(), static_cast<size_t>(workers));
  ASSERT_EQ(live.counters.size(), static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    EXPECT_TRUE(CountersIdentical(live.counters[w], replay.counters[w]))
        << "core " << w << " diverged";
    EXPECT_EQ(live.prefetches[w], replay.prefetches[w]);
  }
  EXPECT_DOUBLE_EQ(replay.window.ipc, live.window.ipc);
  EXPECT_DOUBLE_EQ(replay.window.cycles_per_txn, live.window.cycles_per_txn);
  std::remove(path.c_str());
}

TEST(TraceRoundTripTest, ShoreMt1MB) {
  ExpectBitIdenticalRoundTrip(engine::EngineKind::kShoreMt, "shore_mt",
                              1 << 20, 2'000'000, 1);
}

TEST(TraceRoundTripTest, DbmsD1MB) {
  ExpectBitIdenticalRoundTrip(engine::EngineKind::kDbmsD, "dbms_d",
                              1 << 20, 2'000'000, 1);
}

TEST(TraceRoundTripTest, VoltDb1MB) {
  ExpectBitIdenticalRoundTrip(engine::EngineKind::kVoltDb, "voltdb",
                              1 << 20, 2'000'000, 1);
}

TEST(TraceRoundTripTest, HyPer1MB) {
  ExpectBitIdenticalRoundTrip(engine::EngineKind::kHyPer, "hyper",
                              1 << 20, 2'000'000, 1);
}

TEST(TraceRoundTripTest, DbmsM1MB) {
  ExpectBitIdenticalRoundTrip(engine::EngineKind::kDbmsM, "dbms_m",
                              1 << 20, 2'000'000, 1);
}

TEST(TraceRoundTripTest, Sparse100GBNominal) {
  // The paper's memory-resident-beyond-LLC regime: sparse address-space
  // tables with a resident-row cap (DESIGN.md, Substitutions).
  ExpectBitIdenticalRoundTrip(engine::EngineKind::kVoltDb,
                              "sparse_100gb", 100ULL << 30, 50'000, 1);
}

TEST(TraceRoundTripTest, FourWorkerInterleavingPreserved) {
  // Cross-core invalidations make multi-worker counters depend on the
  // exact global interleaving of accesses; bit-identical counters on
  // every core prove the single-stream encoding preserves it.
  ExpectBitIdenticalRoundTrip(engine::EngineKind::kVoltDb, "mt4",
                              1 << 20, 2'000'000, 4);
}

TEST(TraceReplayTest, DifferentConfigProducesDifferentResult) {
  core::MicroConfig mcfg;
  mcfg.nominal_bytes = 1 << 20;
  core::MicroBenchmark wl(mcfg);
  const std::string path = TmpPath("config_sensitivity");
  RecordResult live;
  ASSERT_TRUE(RecordExperiment(FastConfig(engine::EngineKind::kVoltDb, 1),
                               &wl, path, mcfg.nominal_bytes, 0, 0, &live)
                  .ok());

  TraceReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  mcsim::MachineConfig tiny = reader.meta().recorded_config;
  ASSERT_TRUE(ApplyConfigSpec("l1i=4KB,l1d=4KB", &tiny).ok());

  ReplayResult shrunk;
  ASSERT_TRUE(ReplayTrace(path, tiny, &shrunk).ok());
  // Same retired work, worse cache behaviour.
  EXPECT_EQ(shrunk.counters[0].instructions,
            live.counters[0].instructions);
  EXPECT_GT(shrunk.window.cycles_per_txn, live.window.cycles_per_txn);
  std::remove(path.c_str());
}

TEST(TraceReplayTest, SweepSharesOneFile) {
  core::MicroConfig mcfg;
  mcfg.nominal_bytes = 1 << 20;
  core::MicroBenchmark wl(mcfg);
  const std::string path = TmpPath("sweep");
  RecordResult live;
  ASSERT_TRUE(RecordExperiment(FastConfig(engine::EngineKind::kVoltDb, 2),
                               &wl, path, mcfg.nominal_bytes, 0, 0, &live)
                  .ok());

  TraceReader reader;
  ASSERT_TRUE(reader.Open(path).ok());
  const mcsim::MachineConfig recorded = reader.meta().recorded_config;

  std::vector<SweepCell> cells;
  for (const char* spec : {"", "l1d=16KB", "llc=2MB", "pf=on"}) {
    SweepCell cell;
    cell.label = *spec == '\0' ? "recorded" : spec;
    cell.config = recorded;
    ASSERT_TRUE(ApplyConfigSpec(spec, &cell.config).ok());
    cells.push_back(std::move(cell));
  }
  RunSweep(path, &cells, /*threads=*/2);
  for (const SweepCell& cell : cells) {
    EXPECT_TRUE(cell.status.ok()) << cell.label << ": "
                                  << cell.status.ToString();
    EXPECT_TRUE(cell.result.has_window) << cell.label;
  }
  // The recorded cell must reproduce the live run exactly.
  for (size_t w = 0; w < live.counters.size(); ++w) {
    EXPECT_TRUE(CountersIdentical(live.counters[w],
                                  cells[0].result.counters[w]));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace imoltp::trace
