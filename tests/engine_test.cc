#include "engine/engine.h"

#include <gtest/gtest.h>

#include <cstring>

#include "mcsim/machine.h"
#include "storage/disk_heap_file.h"

namespace imoltp::engine {
namespace {

mcsim::MachineConfig NoTlb(int cores = 1) {
  mcsim::MachineConfig c;
  c.model_tlb = false;
  c.num_cores = cores;
  return c;
}

TableDef SimpleTable(uint64_t rows) {
  TableDef def;
  def.name = "t";
  def.schema = storage::TwoLongColumns();
  def.initial_rows = rows;
  def.seed = 3;
  def.needs_ordered_index = true;
  return def;
}

constexpr EngineKind kAllEngines[] = {
    EngineKind::kShoreMt, EngineKind::kDbmsD, EngineKind::kVoltDb,
    EngineKind::kHyPer, EngineKind::kDbmsM};

class EngineConformanceTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  EngineConformanceTest()
      : machine_(NoTlb()),
        engine_(CreateEngine(GetParam(), &machine_, EngineOptions())) {
    EXPECT_TRUE(engine_->CreateDatabase({SimpleTable(5000)}).ok());
  }

  Status Run(const std::function<Status(TxnContext&)>& body,
             uint64_t partition_key = 0) {
    TxnRequest req;
    req.type = 1;
    req.partition_key = partition_key;
    req.key_space = 5000;
    return engine_->Execute(0, req, body);
  }

  mcsim::MachineSim machine_;
  std::unique_ptr<Engine> engine_;
};

TEST_P(EngineConformanceTest, NameMatchesKind) {
  EXPECT_EQ(engine_->kind(), GetParam());
  EXPECT_STRNE(engine_->name(), "?");
}

TEST_P(EngineConformanceTest, ProbeAndReadInitialRow) {
  Status s = Run([&](TxnContext& ctx) {
    storage::RowId rid;
    Status st = ctx.Probe(0, index::Key::FromUint64(1234), &rid);
    if (!st.ok()) return st;
    uint8_t row[16];
    st = ctx.Read(0, rid, row);
    if (!st.ok()) return st;
    const storage::Schema schema = storage::TwoLongColumns();
    EXPECT_EQ(schema.GetLong(row, 0), 1234);
    return Status::Ok();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST_P(EngineConformanceTest, ProbeMissingKeyReturnsNotFound) {
  Status s = Run([&](TxnContext& ctx) {
    storage::RowId rid;
    return ctx.Probe(0, index::Key::FromUint64(999999), &rid);
  });
  EXPECT_TRUE(s.IsNotFound());
}

TEST_P(EngineConformanceTest, UpdateIsVisibleToLaterTransaction) {
  const int64_t new_value = 4242;
  Status s = Run([&](TxnContext& ctx) {
    storage::RowId rid;
    Status st = ctx.Probe(0, index::Key::FromUint64(77), &rid);
    if (!st.ok()) return st;
    return ctx.Update(0, rid, 1, &new_value);
  });
  ASSERT_TRUE(s.ok()) << s.ToString();

  s = Run([&](TxnContext& ctx) {
    storage::RowId rid;
    Status st = ctx.Probe(0, index::Key::FromUint64(77), &rid);
    if (!st.ok()) return st;
    uint8_t row[16];
    st = ctx.Read(0, rid, row);
    if (!st.ok()) return st;
    EXPECT_EQ(storage::TwoLongColumns().GetLong(row, 1), 4242);
    return Status::Ok();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST_P(EngineConformanceTest, InsertThenProbeFindsRow) {
  Status s = Run([&](TxnContext& ctx) {
    uint8_t row[16];
    const storage::Schema schema = storage::TwoLongColumns();
    schema.SetLong(row, 0, 100000);
    schema.SetLong(row, 1, 1);
    return ctx.Insert(0, row, index::Key::FromUint64(100000));
  });
  ASSERT_TRUE(s.ok()) << s.ToString();

  s = Run([&](TxnContext& ctx) {
    storage::RowId rid;
    Status st = ctx.Probe(0, index::Key::FromUint64(100000), &rid);
    if (!st.ok()) return st;
    uint8_t row[16];
    return ctx.Read(0, rid, row);
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST_P(EngineConformanceTest, DeleteRemovesRowAndKey) {
  Status s = Run([&](TxnContext& ctx) {
    storage::RowId rid;
    Status st = ctx.Probe(0, index::Key::FromUint64(55), &rid);
    if (!st.ok()) return st;
    return ctx.Delete(0, rid, index::Key::FromUint64(55));
  });
  ASSERT_TRUE(s.ok()) << s.ToString();

  s = Run([&](TxnContext& ctx) {
    storage::RowId rid;
    return ctx.Probe(0, index::Key::FromUint64(55), &rid);
  });
  EXPECT_TRUE(s.IsNotFound());
}

TEST_P(EngineConformanceTest, OrderedScanReturnsConsecutiveKeys) {
  Status s = Run([&](TxnContext& ctx) {
    std::vector<storage::RowId> rows;
    Status st = ctx.Scan(0, index::Key::FromUint64(100), 10, &rows);
    if (!st.ok()) return st;
    EXPECT_EQ(rows.size(), 10u);
    uint8_t row[16];
    const storage::Schema schema = storage::TwoLongColumns();
    for (size_t i = 0; i < rows.size(); ++i) {
      st = ctx.Read(0, rows[i], row);
      if (!st.ok()) return st;
      EXPECT_EQ(schema.GetLong(row, 0), static_cast<int64_t>(100 + i));
    }
    return Status::Ok();
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST_P(EngineConformanceTest, TransactionsAndInstructionsAreCounted) {
  const auto& counters = machine_.core(0).counters();
  const uint64_t txns_before = counters.transactions;
  const uint64_t instr_before = counters.instructions;
  ASSERT_TRUE(Run([](TxnContext&) { return Status::Ok(); }).ok());
  EXPECT_EQ(counters.transactions, txns_before + 1);
  EXPECT_GT(counters.instructions, instr_before);
}

TEST_P(EngineConformanceTest, RegistersEngineSideModules) {
  const mcsim::ModuleRegistry& modules = machine_.modules();
  bool engine_side = false;
  for (int i = 0; i < modules.size(); ++i) {
    if (modules.info(i).inside_engine) engine_side = true;
  }
  EXPECT_TRUE(engine_side);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineConformanceTest,
                         ::testing::ValuesIn(kAllEngines),
                         [](const ::testing::TestParamInfo<EngineKind>& i) {
                           std::string n = EngineKindName(i.param);
                           for (char& c : n) {
                             if (c == '-' || c == ' ') c = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// Engine-specific behavior
// ---------------------------------------------------------------------------

TEST(DiskEngineTest, UsesBufferPoolFrames) {
  mcsim::MachineSim m(NoTlb());
  EngineOptions opts;
  auto engine = CreateEngine(EngineKind::kShoreMt, &m, opts);
  ASSERT_TRUE(engine->CreateDatabase({SimpleTable(10000)}).ok());
  // 10000 rows of 16B rows in 8KB slotted pages: dozens of pages exist.
  // (Smoke check through a transaction touching one of them.)
  TxnRequest req;
  Status s = engine->Execute(0, req, [&](TxnContext& ctx) {
    storage::RowId rid;
    Status st = ctx.Probe(0, index::Key::FromUint64(9999), &rid);
    if (!st.ok()) return st;
    EXPECT_GT(storage::DiskHeapFile::PageNo(rid), 10u);
    uint8_t row[16];
    return ctx.Read(0, rid, row);
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(PartitionedEngineTest, RoutesByPartitionKey) {
  mcsim::MachineSim m(NoTlb(2));
  EngineOptions opts;
  opts.num_partitions = 2;
  auto engine = CreateEngine(EngineKind::kHyPer, &m, opts);
  ASSERT_TRUE(engine->CreateDatabase({SimpleTable(5000)}).ok());

  // Worker 0 probing a key from partition 1's range must be rejected
  // (the request is routed to the wrong site).
  TxnRequest req;
  req.partition_key = 4000;  // partition 1
  req.key_space = 5000;
  Status s = engine->Execute(0, req,
                             [](TxnContext&) { return Status::Ok(); });
  EXPECT_TRUE(s.IsAborted());

  // Worker 1 executing the same request succeeds and finds the key.
  s = engine->Execute(1, req, [&](TxnContext& ctx) {
    storage::RowId rid;
    return ctx.Probe(0, index::Key::FromUint64(4000), &rid);
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(PartitionedEngineTest, ReplicatedTableExistsOnEveryPartition) {
  mcsim::MachineSim m(NoTlb(2));
  EngineOptions opts;
  opts.num_partitions = 2;
  auto engine = CreateEngine(EngineKind::kVoltDb, &m, opts);
  TableDef replicated = SimpleTable(1000);
  replicated.replicated = true;
  ASSERT_TRUE(engine->CreateDatabase({replicated}).ok());
  for (int worker = 0; worker < 2; ++worker) {
    TxnRequest req;
    req.partition_key = worker == 0 ? 0 : 999;
    req.key_space = 1000;
    Status s = engine->Execute(worker, req, [&](TxnContext& ctx) {
      storage::RowId rid;
      return ctx.Probe(0, index::Key::FromUint64(999), &rid);
    });
    EXPECT_TRUE(s.ok()) << "worker " << worker << ": " << s.ToString();
  }
}

TEST(MvccEngineTest, CompilationtogglesStorageCodePath) {
  // With compilation the per-operation instruction count drops (the
  // Figure 13 mechanism); verify the toggle changes retired instructions.
  uint64_t instr[2];
  for (int compiled = 0; compiled < 2; ++compiled) {
    mcsim::MachineSim m(NoTlb());
    EngineOptions opts;
    opts.compilation = compiled == 1;
    auto engine = CreateEngine(EngineKind::kDbmsM, &m, opts);
    ASSERT_TRUE(engine->CreateDatabase({SimpleTable(2000)}).ok());
    const uint64_t before = m.core(0).counters().instructions;
    TxnRequest req;
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(engine
                      ->Execute(0, req,
                                [&](TxnContext& ctx) {
                                  storage::RowId rid;
                                  Status st = ctx.Probe(
                                      0, index::Key::FromUint64(i), &rid);
                                  if (!st.ok()) return st;
                                  uint8_t row[16];
                                  return ctx.Read(0, rid, row);
                                })
                      .ok());
    }
    instr[compiled] = m.core(0).counters().instructions - before;
  }
  EXPECT_LT(instr[1], instr[0]);
}

TEST(MvccEngineTest, DbmsMIndexOptionSelectsStructure) {
  // Hash for point workloads, cache-conscious B-tree when scans are
  // needed: the ordered-index requirement must override the hash choice.
  mcsim::MachineSim m(NoTlb());
  EngineOptions opts;
  opts.dbms_m_index = index::IndexKind::kHash;
  auto engine = CreateEngine(EngineKind::kDbmsM, &m, opts);
  TableDef def = SimpleTable(1000);
  def.needs_ordered_index = true;
  ASSERT_TRUE(engine->CreateDatabase({def}).ok());
  TxnRequest req;
  Status s = engine->Execute(0, req, [&](TxnContext& ctx) {
    std::vector<storage::RowId> rows;
    Status st = ctx.Scan(0, index::Key::FromUint64(0), 5, &rows);
    EXPECT_EQ(rows.size(), 5u);
    return st;
  });
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(VoltDbTest, MultiSiteModeRaisesInstructionFootprint) {
  uint64_t instr[2];
  for (int single_site = 0; single_site < 2; ++single_site) {
    mcsim::MachineSim m(NoTlb());
    EngineOptions opts;
    opts.single_site = single_site == 1;
    auto engine = CreateEngine(EngineKind::kVoltDb, &m, opts);
    ASSERT_TRUE(engine->CreateDatabase({SimpleTable(2000)}).ok());
    const uint64_t before = m.core(0).counters().instructions;
    TxnRequest req;
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(engine
                      ->Execute(0, req,
                                [](TxnContext&) { return Status::Ok(); })
                      .ok());
    }
    instr[single_site] = m.core(0).counters().instructions - before;
  }
  EXPECT_GT(instr[0], instr[1]);  // multi-site path costs more
}

}  // namespace
}  // namespace imoltp::engine
