// Cross-engine integration tests: the qualitative findings of the paper
// must hold on the simulated apparatus end to end. These run scaled-down
// experiments (small databases, short windows) — the full-scale numbers
// live in bench/.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/microbench.h"
#include "core/tpcb.h"

namespace imoltp::core {
namespace {

using engine::EngineKind;

ExperimentConfig Fast(EngineKind kind) {
  ExperimentConfig cfg;
  cfg.engine = kind;
  cfg.warmup_txns = 300;
  cfg.measure_txns = 1500;
  return cfg;
}

mcsim::WindowReport RunMicro(EngineKind kind, uint64_t nominal_bytes,
                             int rows = 1,
                             engine::EngineOptions opts = {},
                             uint64_t max_rows = 400000) {
  MicroConfig mcfg;
  mcfg.nominal_bytes = nominal_bytes;
  mcfg.rows_per_txn = rows;
  mcfg.max_resident_rows = max_rows;  // default keeps tests quick
  MicroBenchmark wl(mcfg);
  ExperimentConfig cfg = Fast(kind);
  cfg.engine_options = opts;
  return RunExperiment(cfg, &wl).value();
}

constexpr uint64_t kSmall = 4ULL << 20;    // fits in the 20MB LLC
constexpr uint64_t kHuge = 100ULL << 30;   // far beyond it

TEST(PaperFindingsTest, NoEngineReachesIssueWidth) {
  // Headline result: IPC barely reaches 1 on a 4-wide machine.
  for (EngineKind kind :
       {EngineKind::kShoreMt, EngineKind::kDbmsD, EngineKind::kVoltDb,
        EngineKind::kDbmsM}) {
    const auto r = RunMicro(kind, kHuge);
    EXPECT_LT(r.ipc, 1.2) << engine::EngineKindName(kind);
  }
}

TEST(PaperFindingsTest, CompiledEngineDoublesIpcWhenDataFits) {
  // Section 4.1.1: HyPer reaches about twice the IPC of the others when
  // the working set fits in the LLC.
  const auto hyper = RunMicro(EngineKind::kHyPer, kSmall);
  const auto volt = RunMicro(EngineKind::kVoltDb, kSmall);
  const auto shore = RunMicro(EngineKind::kShoreMt, kSmall);
  EXPECT_GT(hyper.ipc, 1.4);
  EXPECT_GT(hyper.ipc, 1.5 * volt.ipc);
  EXPECT_GT(hyper.ipc, 2.0 * shore.ipc);
}

TEST(PaperFindingsTest, CompiledEngineHasLowestIpcBeyondLlc) {
  // Section 4.1: when data exceeds the LLC, HyPer's long-latency data
  // misses make it the slowest per instruction. The collapse deepens
  // with working-set size, so this check runs at the larger resident
  // scale the figures use.
  const auto hyper =
      RunMicro(EngineKind::kHyPer, kHuge, 1, {}, 1'000'000);
  for (EngineKind kind :
       {EngineKind::kShoreMt, EngineKind::kDbmsD, EngineKind::kVoltDb,
        EngineKind::kDbmsM}) {
    EXPECT_LT(hyper.ipc, RunMicro(kind, kHuge, 1, {}, 1'000'000).ipc)
        << engine::EngineKindName(kind);
  }
}

TEST(PaperFindingsTest, InstructionStallsDominateExceptForHyper) {
  // Section 4.1.2: L1I stalls are the largest component for every
  // system except HyPer, whose compilation eliminates them.
  for (EngineKind kind :
       {EngineKind::kShoreMt, EngineKind::kDbmsD, EngineKind::kVoltDb,
        EngineKind::kDbmsM}) {
    const auto r = RunMicro(kind, kHuge);
    EXPECT_GT(r.stalls_per_kinstr.instruction_total(),
              r.stalls_per_kinstr.data_total())
        << engine::EngineKindName(kind);
  }
  const auto hyper = RunMicro(EngineKind::kHyPer, kHuge);
  EXPECT_LT(hyper.stalls_per_kinstr.stalls[0], 10.0);
  EXPECT_GT(hyper.stalls_per_kinstr.data_total(),
            hyper.stalls_per_kinstr.instruction_total());
}

TEST(PaperFindingsTest, MemoryStallsExceedHalfTheCycles) {
  // The abstract's claim: more than half of execution time goes to
  // memory stalls. Cycle shares here use the model's effective costs.
  const auto r = RunMicro(EngineKind::kDbmsD, kHuge);
  const double stall_share =
      1.0 - (r.instructions / 3.0) / r.cycles;  // base-work share removed
  EXPECT_GT(stall_share, 0.5);
}

TEST(PaperFindingsTest, FrontendFootprintSeparatesDiskEngines) {
  // DBMS D runs parser/optimizer layers per transaction; Shore-MT has
  // hard-coded plans. Instruction counts and stalls must reflect it.
  const auto shore = RunMicro(EngineKind::kShoreMt, kHuge);
  const auto dbmsd = RunMicro(EngineKind::kDbmsD, kHuge);
  EXPECT_GT(dbmsd.instructions_per_txn, 1.5 * shore.instructions_per_txn);
  EXPECT_GT(dbmsd.stalls_per_txn.instruction_total(),
            1.5 * shore.stalls_per_txn.instruction_total());
}

TEST(PaperFindingsTest, WorkPerTransactionMovesIpcOppositeWays) {
  // Section 4.2.1: more rows per transaction raises the disk engines'
  // IPC (better instruction locality) and lowers the in-memory ones'
  // (more random data misses per instruction).
  const auto shore1 = RunMicro(EngineKind::kShoreMt, kHuge, 1);
  const auto shore100 = RunMicro(EngineKind::kShoreMt, kHuge, 100);
  EXPECT_GT(shore100.ipc, shore1.ipc);

  const auto hyper1 = RunMicro(EngineKind::kHyPer, kHuge, 1);
  const auto hyper100 = RunMicro(EngineKind::kHyPer, kHuge, 100);
  EXPECT_LT(hyper100.ipc, hyper1.ipc);
}

TEST(PaperFindingsTest, InstructionStallsPerKInstrFallWithMoreWork) {
  // Section 4.2.2: repetitive per-row work amortizes the code outside
  // the loop for every system.
  for (EngineKind kind : {EngineKind::kShoreMt, EngineKind::kDbmsD,
                          EngineKind::kVoltDb, EngineKind::kDbmsM}) {
    const auto r1 = RunMicro(kind, kHuge, 1);
    const auto r100 = RunMicro(kind, kHuge, 100);
    EXPECT_LT(r100.stalls_per_kinstr.instruction_total(),
              r1.stalls_per_kinstr.instruction_total())
        << engine::EngineKindName(kind);
  }
}

TEST(PaperFindingsTest, CompilationCutsInstructionStalls) {
  // Section 6.1: DBMS M's compilation roughly halves instruction stalls.
  engine::EngineOptions with, without;
  with.compilation = true;
  without.compilation = false;
  const auto on = RunMicro(EngineKind::kDbmsM, kHuge, 10, with);
  const auto off = RunMicro(EngineKind::kDbmsM, kHuge, 10, without);
  EXPECT_LT(on.stalls_per_kinstr.instruction_total(),
            0.75 * off.stalls_per_kinstr.instruction_total());
}

TEST(PaperFindingsTest, BTreeCausesMoreDataStallsThanHash) {
  // Section 6.1: LLC data stalls are 2-4x larger with the B-tree index
  // than with the hash index. The direction must hold here; the full
  // magnitude needs the paper's 2-billion-row index (several uncached
  // B-tree levels), which the scaled resident index cannot reproduce —
  // see EXPERIMENTS.md, Fig 13 notes.
  MicroConfig mcfg;
  mcfg.nominal_bytes = kHuge;
  mcfg.rows_per_txn = 10;
  mcfg.max_resident_rows = 1'200'000;
  ExperimentConfig cfg = Fast(EngineKind::kDbmsM);
  cfg.engine_options.dbms_m_index = index::IndexKind::kHash;
  MicroBenchmark wl1(mcfg);
  const auto h = RunExperiment(cfg, &wl1).value();
  cfg.engine_options.dbms_m_index = index::IndexKind::kBTreeCc;
  MicroBenchmark wl2(mcfg);
  const auto b = RunExperiment(cfg, &wl2).value();
  EXPECT_GT(b.stalls_per_kinstr.stalls[5],
            1.2 * h.stalls_per_kinstr.stalls[5]);
}

TEST(PaperFindingsTest, TpcbHasBetterDataLocalityThanMicro) {
  // Section 5.1: TPC-B's small Branch/Teller tables and append-only
  // History give it higher data locality than the random micro probes,
  // so data stalls per k-instruction are lower.
  TpcbConfig tcfg;
  tcfg.nominal_bytes = kHuge;
  tcfg.max_resident_accounts = 400000;
  TpcbBenchmark tpcb(tcfg);
  const auto tpcb_report =
      RunExperiment(Fast(EngineKind::kVoltDb), &tpcb).value();

  MicroConfig mcfg;
  mcfg.nominal_bytes = kHuge;
  mcfg.rows_per_txn = 3;  // comparable work: ~3 row touches
  mcfg.read_write = true;
  mcfg.max_resident_rows = 400000;
  MicroBenchmark micro(mcfg);
  const auto micro_report =
      RunExperiment(Fast(EngineKind::kVoltDb), &micro).value();

  EXPECT_LT(tpcb_report.stalls_per_kinstr.stalls[5],
            micro_report.stalls_per_kinstr.stalls[5]);
}

TEST(PaperFindingsTest, MultiThreadedBehavesLikeSingleThreaded) {
  // Section 7: multi-worker runs do not change the conclusions.
  MicroConfig mcfg;
  mcfg.nominal_bytes = kHuge;
  mcfg.max_resident_rows = 400000;
  MicroBenchmark single(mcfg);
  const auto r1 =
      RunExperiment(Fast(EngineKind::kVoltDb), &single).value();

  MicroConfig mt_cfg = mcfg;
  mt_cfg.num_partitions = 4;
  MicroBenchmark multi(mt_cfg);
  ExperimentConfig cfg = Fast(EngineKind::kVoltDb);
  cfg.num_workers = 4;
  const auto r4 = RunExperiment(cfg, &multi).value();

  EXPECT_LT(r4.ipc, 1.2);
  EXPECT_NEAR(r4.ipc, r1.ipc, 0.25 * r1.ipc);
}

}  // namespace
}  // namespace imoltp::core
