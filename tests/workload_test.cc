#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/microbench.h"
#include "core/tpcb.h"
#include "core/tpcc.h"
#include "mcsim/machine.h"

namespace imoltp::core {
namespace {

using engine::EngineKind;

constexpr EngineKind kAllEngines[] = {
    EngineKind::kShoreMt, EngineKind::kDbmsD, EngineKind::kVoltDb,
    EngineKind::kHyPer, EngineKind::kDbmsM};

mcsim::MachineConfig NoTlb() {
  mcsim::MachineConfig c;
  c.model_tlb = false;
  return c;
}

std::unique_ptr<engine::Engine> MakeEngine(EngineKind kind,
                                           mcsim::MachineSim* m,
                                           Workload* workload,
                                           bool ordered_index = false) {
  engine::EngineOptions opts;
  if (ordered_index) opts.dbms_m_index = index::IndexKind::kBTreeCc;
  auto engine = engine::CreateEngine(kind, m, opts);
  EXPECT_TRUE(engine->CreateDatabase(workload->Tables()).ok());
  return engine;
}

// ---------------------------------------------------------------------------
// Micro-benchmark
// ---------------------------------------------------------------------------

TEST(MicroBenchmarkTest, RowCountScalesWithNominalSize) {
  MicroConfig small;
  small.nominal_bytes = 1 << 20;
  MicroConfig big;
  big.nominal_bytes = 10 << 20;
  EXPECT_NEAR(static_cast<double>(MicroBenchmark(big).num_rows()) /
                  MicroBenchmark(small).num_rows(),
              10.0, 0.1);
}

TEST(MicroBenchmarkTest, RowCountIsCappedForHugeSizes) {
  MicroConfig cfg;
  cfg.nominal_bytes = 100ULL << 30;
  cfg.max_resident_rows = 123456;
  EXPECT_EQ(MicroBenchmark(cfg).num_rows(), 123456u);
}

class MicroOnEveryEngineTest
    : public ::testing::TestWithParam<EngineKind> {};

TEST_P(MicroOnEveryEngineTest, ReadOnlyTransactionsSucceed) {
  MicroConfig cfg;
  cfg.nominal_bytes = 1 << 20;
  cfg.rows_per_txn = 4;
  MicroBenchmark wl(cfg);
  mcsim::MachineSim m(NoTlb());
  auto engine = MakeEngine(GetParam(), &m, &wl);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Status s = wl.RunTransaction(engine.get(), 0, &rng);
    ASSERT_TRUE(s.ok()) << i << ": " << s.ToString();
  }
  EXPECT_EQ(m.core(0).counters().transactions, 200u);
}

TEST_P(MicroOnEveryEngineTest, ReadWriteTransactionsSucceed) {
  MicroConfig cfg;
  cfg.nominal_bytes = 1 << 20;
  cfg.read_write = true;
  MicroBenchmark wl(cfg);
  mcsim::MachineSim m(NoTlb());
  auto engine = MakeEngine(GetParam(), &m, &wl);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(wl.RunTransaction(engine.get(), 0, &rng).ok()) << i;
  }
}

TEST_P(MicroOnEveryEngineTest, StringVariantSucceeds) {
  MicroConfig cfg;
  cfg.nominal_bytes = 1 << 20;
  cfg.string_columns = true;
  cfg.read_write = true;
  MicroBenchmark wl(cfg);
  mcsim::MachineSim m(NoTlb());
  auto engine = MakeEngine(GetParam(), &m, &wl);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(wl.RunTransaction(engine.get(), 0, &rng).ok()) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, MicroOnEveryEngineTest,
                         ::testing::ValuesIn(kAllEngines),
                         [](const ::testing::TestParamInfo<EngineKind>& i) {
                           std::string n = engine::EngineKindName(i.param);
                           for (char& c : n) {
                             if (c == '-' || c == ' ') c = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// TPC-B
// ---------------------------------------------------------------------------

TEST(TpcbTest, KeepsSpecCardinalityRatios) {
  TpcbConfig cfg;
  cfg.nominal_bytes = 1ULL << 30;
  TpcbBenchmark wl(cfg);
  EXPECT_EQ(wl.num_accounts() % wl.num_branches(), 0u);
  EXPECT_GE(wl.num_accounts() / wl.num_branches(), 1000u);
}

class TpcbOnEveryEngineTest : public ::testing::TestWithParam<EngineKind> {
};

TEST_P(TpcbOnEveryEngineTest, AccountUpdateTransactionsSucceed) {
  TpcbConfig cfg;
  cfg.nominal_bytes = 64 << 20;
  TpcbBenchmark wl(cfg);
  mcsim::MachineSim m(NoTlb());
  auto engine = MakeEngine(GetParam(), &m, &wl);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const Status s = wl.RunTransaction(engine.get(), 0, &rng);
    ASSERT_TRUE(s.ok()) << i << ": " << s.ToString();
  }
}

TEST_P(TpcbOnEveryEngineTest, MoneyIsConserved) {
  // Every AccountUpdate adds the same delta to one branch, one teller,
  // and one account: after any run, sum(branch balances) must equal
  // sum(teller balances) and sum(account deltas).
  TpcbConfig cfg;
  cfg.nominal_bytes = 16 << 20;
  TpcbBenchmark wl(cfg);
  mcsim::MachineSim m(NoTlb());
  auto engine = MakeEngine(GetParam(), &m, &wl);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(wl.RunTransaction(engine.get(), 0, &rng).ok());
  }

  const storage::Schema schema({storage::ColumnType::kLong,
                                storage::ColumnType::kLong,
                                storage::ColumnType::kString});
  int64_t branch_total = 0;
  int64_t teller_total = 0;
  engine::TxnRequest req;
  req.key_space = wl.num_branches();
  const Status s = engine->Execute(0, req, [&](engine::TxnContext& ctx) {
    uint8_t row[128];
    for (uint64_t b = 0; b < wl.num_branches(); ++b) {
      storage::RowId rid;
      Status st =
          ctx.Probe(TpcbBenchmark::kTableBranch,
                    index::Key::FromUint64(b), &rid);
      if (!st.ok()) return st;
      st = ctx.Read(TpcbBenchmark::kTableBranch, rid, row);
      if (!st.ok()) return st;
      branch_total += schema.GetLong(row, 1);
      // Initial balances are generated pseudo-randomly; subtract them.
      uint8_t initial[128];
      storage::DefaultRowGenerator(schema, b, 11, initial);
      branch_total -= schema.GetLong(initial, 1);
    }
    for (uint64_t t = 0; t < wl.num_branches() *
                                 TpcbBenchmark::kTellersPerBranch;
         ++t) {
      storage::RowId rid;
      Status st = ctx.Probe(TpcbBenchmark::kTableTeller,
                            index::Key::FromUint64(t), &rid);
      if (!st.ok()) return st;
      st = ctx.Read(TpcbBenchmark::kTableTeller, rid, row);
      if (!st.ok()) return st;
      teller_total += schema.GetLong(row, 1);
      uint8_t initial[128];
      storage::DefaultRowGenerator(schema, t, 12, initial);
      teller_total -= schema.GetLong(initial, 1);
    }
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(branch_total, teller_total);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, TpcbOnEveryEngineTest,
                         ::testing::ValuesIn(kAllEngines),
                         [](const ::testing::TestParamInfo<EngineKind>& i) {
                           std::string n = engine::EngineKindName(i.param);
                           for (char& c : n) {
                             if (c == '-' || c == ' ') c = '_';
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// TPC-C
// ---------------------------------------------------------------------------

TEST(TpccTest, CompositeKeysAreOrderedByWarehouse) {
  EXPECT_LT(TpccBenchmark::OrderKey(1, 9, 5000),
            TpccBenchmark::OrderKey(2, 0, 0));
  EXPECT_LT(TpccBenchmark::OrderLineKey(1, 2, 3, 4),
            TpccBenchmark::OrderLineKey(1, 2, 4, 0));
  EXPECT_LT(TpccBenchmark::StockKey(3, 99999),
            TpccBenchmark::StockKey(4, 0));
}

class TpccOnEveryEngineTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  static TpccConfig SmallConfig() {
    TpccConfig cfg;
    cfg.warehouses = 2;
    cfg.orders_per_district = 90;
    return cfg;
  }
};

TEST_P(TpccOnEveryEngineTest, FullMixRuns) {
  TpccConfig cfg = SmallConfig();
  TpccBenchmark wl(cfg);
  mcsim::MachineSim m(NoTlb());
  auto engine = MakeEngine(GetParam(), &m, &wl, /*ordered_index=*/true);
  Rng rng(6);
  int failures = 0;
  for (int i = 0; i < 400; ++i) {
    if (!wl.RunTransaction(engine.get(), 0, &rng).ok()) ++failures;
  }
  EXPECT_EQ(failures, 0);
  const auto& mix = wl.mix_counts();
  EXPECT_GT(mix.new_order, 100u);
  EXPECT_GT(mix.payment, 100u);
  EXPECT_GT(mix.order_status, 0u);
  EXPECT_GT(mix.delivery, 0u);
  EXPECT_GT(mix.stock_level, 0u);
}

TEST_P(TpccOnEveryEngineTest, WarehouseYtdEqualsSumOfDistrictYtd) {
  // TPC-C consistency condition 1/2 (clause 3.3.2): after any number of
  // Payment transactions, W_YTD == sum(D_YTD) for every warehouse.
  TpccConfig cfg = SmallConfig();
  TpccBenchmark wl(cfg);
  mcsim::MachineSim m(NoTlb());
  auto engine = MakeEngine(GetParam(), &m, &wl, /*ordered_index=*/true);
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(wl.RunTransaction(engine.get(), 0, &rng).ok()) << i;
  }

  engine::TxnRequest req;
  req.key_space = cfg.warehouses;
  const Status s = engine->Execute(0, req, [&](engine::TxnContext& ctx) {
    uint8_t row[160];
    for (uint64_t w = 0; w < static_cast<uint64_t>(cfg.warehouses); ++w) {
      storage::RowId rid;
      Status st = ctx.Probe(TpccBenchmark::kWarehouse,
                            index::Key::FromUint64(w), &rid);
      if (!st.ok()) return st;
      st = ctx.Read(TpccBenchmark::kWarehouse, rid, row);
      if (!st.ok()) return st;
      const storage::Schema wsch({storage::ColumnType::kLong,
                                  storage::ColumnType::kLong,
                                  storage::ColumnType::kString});
      const int64_t w_ytd = wsch.GetLong(row, 1);

      int64_t d_ytd_sum = 0;
      const storage::Schema dsch(
          {storage::ColumnType::kLong, storage::ColumnType::kLong,
           storage::ColumnType::kLong, storage::ColumnType::kString});
      for (uint64_t d = 0; d < TpccBenchmark::kDistrictsPerWarehouse;
           ++d) {
        st = ctx.Probe(
            TpccBenchmark::kDistrict,
            index::Key::FromUint64(TpccBenchmark::DistrictKey(w, d)),
            &rid);
        if (!st.ok()) return st;
        st = ctx.Read(TpccBenchmark::kDistrict, rid, row);
        if (!st.ok()) return st;
        d_ytd_sum += dsch.GetLong(row, 1);
      }
      EXPECT_EQ(w_ytd, d_ytd_sum) << "warehouse " << w;
    }
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok()) << s.ToString();
}

TEST_P(TpccOnEveryEngineTest, NewOrderAdvancesDistrictCounter) {
  TpccConfig cfg = SmallConfig();
  TpccBenchmark wl(cfg);
  mcsim::MachineSim m(NoTlb());
  auto engine = MakeEngine(GetParam(), &m, &wl, /*ordered_index=*/true);
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(wl.RunTransaction(engine.get(), 0, &rng).ok());
  }
  // Sum of (next_o_id - initial) across districts == New-Order count.
  engine::TxnRequest req;
  req.key_space = cfg.warehouses;
  int64_t advanced = 0;
  const Status s = engine->Execute(0, req, [&](engine::TxnContext& ctx) {
    uint8_t row[160];
    const storage::Schema dsch(
        {storage::ColumnType::kLong, storage::ColumnType::kLong,
         storage::ColumnType::kLong, storage::ColumnType::kString});
    for (uint64_t w = 0; w < static_cast<uint64_t>(cfg.warehouses); ++w) {
      for (uint64_t d = 0; d < TpccBenchmark::kDistrictsPerWarehouse;
           ++d) {
        storage::RowId rid;
        Status st = ctx.Probe(
            TpccBenchmark::kDistrict,
            index::Key::FromUint64(TpccBenchmark::DistrictKey(w, d)),
            &rid);
        if (!st.ok()) return st;
        st = ctx.Read(TpccBenchmark::kDistrict, rid, row);
        if (!st.ok()) return st;
        advanced += dsch.GetLong(row, 2) - cfg.orders_per_district;
      }
    }
    return Status::Ok();
  });
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(advanced,
            static_cast<int64_t>(wl.mix_counts().new_order));
}

INSTANTIATE_TEST_SUITE_P(AllEngines, TpccOnEveryEngineTest,
                         ::testing::ValuesIn(kAllEngines),
                         [](const ::testing::TestParamInfo<EngineKind>& i) {
                           std::string n = engine::EngineKindName(i.param);
                           for (char& c : n) {
                             if (c == '-' || c == ' ') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace imoltp::core
