#include <gtest/gtest.h>

#include "mcsim/machine.h"
#include "mcsim/profiler.h"

namespace imoltp::mcsim {
namespace {

MachineConfig NoTlb(int cores = 1) {
  MachineConfig c;
  c.model_tlb = false;
  c.num_cores = cores;
  return c;
}

TEST(MachineSimTest, ConfiguredCoreCount) {
  MachineSim m(NoTlb(4));
  EXPECT_EQ(m.num_cores(), 4);
}

TEST(MachineSimTest, WriteInvalidatesSiblingCopies) {
  MachineSim m(NoTlb(2));
  m.core(0).Read(0x1000, 8);
  ASSERT_TRUE(m.core(0).HoldsLine(0x1000 >> 6));
  m.core(1).Write(0x1000, 8);
  EXPECT_FALSE(m.core(0).HoldsLine(0x1000 >> 6));
  // Core 0 re-reads: private miss again (coherence miss).
  const uint64_t before = m.core(0).counters().misses.l1d;
  m.core(0).Read(0x1000, 8);
  EXPECT_EQ(m.core(0).counters().misses.l1d, before + 1);
}

TEST(MachineSimTest, SingleCoreSkipsInvalidationPath) {
  MachineSim m(NoTlb(1));
  m.core(0).Read(0x1000, 8);
  m.core(0).Write(0x1000, 8);
  EXPECT_TRUE(m.core(0).HoldsLine(0x1000 >> 6));
}

TEST(MachineSimTest, SharedLlcServesSecondCore) {
  MachineSim m(NoTlb(2));
  m.core(0).Read(0x2000, 8);
  m.core(1).Read(0x2000, 8);
  // Core 1 misses privately but hits the shared LLC.
  EXPECT_EQ(m.core(1).counters().misses.l1d, 1u);
  EXPECT_EQ(m.core(1).counters().misses.llc_d, 0u);
}

TEST(MachineSimTest, TotalCountersSumAcrossCores) {
  MachineSim m(NoTlb(2));
  m.core(0).Retire(10);
  m.core(1).Retire(32);
  EXPECT_EQ(m.TotalCounters().instructions, 42u);
}

TEST(MachineSimTest, ResetClearsEverything) {
  MachineSim m(NoTlb(2));
  m.core(0).Read(0x1000, 8);
  m.Reset();
  EXPECT_EQ(m.TotalCounters().data_accesses, 0u);
  EXPECT_EQ(m.llc().misses(), 0u);
}

TEST(ProfilerTest, WindowReportsOnlyDeltas) {
  MachineSim m(NoTlb(1));
  m.core(0).Retire(1000);  // before the window
  Profiler p(&m);
  p.BeginWindow({0});
  m.core(0).Retire(600);
  m.core(0).BeginTransaction();
  WindowReport r = p.EndWindow();
  EXPECT_DOUBLE_EQ(r.instructions, 600.0);
  EXPECT_DOUBLE_EQ(r.transactions, 1.0);
}

TEST(ProfilerTest, ReportedStallsEqualMissesTimesPenalty) {
  MachineSim m(NoTlb(1));
  Profiler p(&m);
  p.BeginWindow({0});
  m.core(0).Retire(1000);
  for (int i = 0; i < 10; ++i) {
    m.core(0).Read(0x100000 + i * 4096, 8);  // 10 cold lines
  }
  m.core(0).BeginTransaction();
  WindowReport r = p.EndWindow();
  const CycleModelParams& params = m.config().cycle;
  EXPECT_DOUBLE_EQ(r.stalls_per_txn.stalls[3],
                   10 * params.l1_miss_penalty);
  EXPECT_DOUBLE_EQ(r.stalls_per_txn.stalls[5],
                   10 * params.llc_miss_penalty);
  // Per-k-instruction scaling.
  EXPECT_DOUBLE_EQ(r.stalls_per_kinstr.stalls[5],
                   10 * params.llc_miss_penalty);  // exactly 1k instr
}

TEST(ProfilerTest, PerWorkerAveraging) {
  MachineSim m(NoTlb(2));
  Profiler p(&m);
  p.BeginWindow({0, 1});
  m.core(0).Retire(100);
  m.core(1).Retire(300);
  WindowReport r = p.EndWindow();
  EXPECT_EQ(r.num_workers, 2);
  EXPECT_DOUBLE_EQ(r.instructions, 200.0);
}

TEST(ProfilerTest, ModuleBreakdownFractionsSumToOne) {
  MachineSim m(NoTlb(1));
  const ModuleId a = m.modules().Register("a", true);
  const ModuleId b = m.modules().Register("b", false);
  Profiler p(&m);
  p.BeginWindow({0});
  {
    ScopedModule s(&m.core(0), a);
    m.core(0).Retire(1000);
  }
  {
    ScopedModule s(&m.core(0), b);
    m.core(0).Retire(3000);
  }
  WindowReport r = p.EndWindow();
  double sum = 0;
  for (const auto& share : r.module_breakdown) sum += share.fraction;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_NEAR(r.engine_cycle_fraction, 0.25, 1e-9);
}

TEST(ProfilerTest, IpcMatchesCycleModel) {
  MachineSim m(NoTlb(1));
  Profiler p(&m);
  p.BeginWindow({0});
  m.core(0).Retire(900);  // no misses: cycles = 900 * base_cpi = 300
  WindowReport r = p.EndWindow();
  EXPECT_NEAR(r.ipc, 3.0, 1e-9);  // the paper's no-miss loop IPC
}

TEST(CycleModelTest, FormulaComposition) {
  CycleModelParams p;
  ModuleCounters c;
  c.instructions = 3000;
  c.base_cycles = 1000;
  c.misses.l1i = 10;
  c.misses.llc_d = 2;
  c.mispredictions = 4;
  c.tlb_misses = 3;
  const double amp = EffectiveLlcAmp(2, 3000, p);
  const double expected = 1000 +
                          10 * p.l1_miss_penalty *
                              p.frontend_amplification +
                          2 * p.llc_miss_penalty * amp +
                          4 * p.mispredict_penalty +
                          3 * p.tlb_walk_cycles;
  EXPECT_NEAR(SimulatedCycles(c, p), expected, 1e-9);
}

TEST(CycleModelTest, LlcAmplificationRampsWithMissDensity) {
  CycleModelParams p;
  // Sparse misses cost near the raw penalty; dense chains saturate.
  EXPECT_DOUBLE_EQ(EffectiveLlcAmp(0, 100000, p), p.llc_amp_floor);
  EXPECT_DOUBLE_EQ(EffectiveLlcAmp(1, 100000, p), p.llc_amp_floor);
  EXPECT_DOUBLE_EQ(EffectiveLlcAmp(300, 100000, p), p.data_amp_llc);
  const double mid = EffectiveLlcAmp(140, 100000, p);  // 1.4 per kI
  EXPECT_GT(mid, p.llc_amp_floor);
  EXPECT_LT(mid, p.data_amp_llc);
}

TEST(CycleModelTest, Table1PenaltiesAreDefaults) {
  CycleModelParams p;
  EXPECT_DOUBLE_EQ(p.l1_miss_penalty, 8.0);
  EXPECT_DOUBLE_EQ(p.l2_miss_penalty, 19.0);
  EXPECT_DOUBLE_EQ(p.llc_miss_penalty, 167.0);
}

TEST(ProfilerDeathTest, EndWindowWithoutBeginAborts) {
  MachineSim m(NoTlb(1));
  Profiler p(&m);
  EXPECT_DEATH(p.EndWindow(), "EndWindow without a matching BeginWindow");
}

TEST(ProfilerDeathTest, DoubleBeginWindowAborts) {
  MachineSim m(NoTlb(1));
  Profiler p(&m);
  p.BeginWindow({0});
  EXPECT_DEATH(p.BeginWindow({0}), "already open");
}

TEST(ProfilerDeathTest, EmptyWorkerCoresAborts) {
  MachineSim m(NoTlb(1));
  Profiler p(&m);
  EXPECT_DEATH(p.BeginWindow({}), "worker_cores");
}

TEST(ProfilerDeathTest, OutOfRangeCoreAborts) {
  MachineSim m(NoTlb(2));
  Profiler p(&m);
  EXPECT_DEATH(p.BeginWindow({0, 7}), "out of range");
}

TEST(ProfilerDeathTest, NegativeCoreAborts) {
  MachineSim m(NoTlb(2));
  Profiler p(&m);
  EXPECT_DEATH(p.BeginWindow({-1}), "out of range");
}

TEST(ProfilerDeathTest, SecondEndWindowAborts) {
  // A closed window must be re-opened before it can close again — a
  // stray second EndWindow would report deltas against stale
  // snapshots.
  MachineSim m(NoTlb(1));
  Profiler p(&m);
  p.BeginWindow({0});
  m.core(0).Retire(100);
  p.EndWindow();
  EXPECT_DEATH(p.EndWindow(), "EndWindow without a matching BeginWindow");
}

TEST(ProfilerTest, WindowReopensCleanlyAfterClose) {
  // Begin/End is reusable: the second window reports only its own
  // retirements, not the first window's.
  MachineSim m(NoTlb(1));
  Profiler p(&m);
  p.BeginWindow({0});
  m.core(0).Retire(900);
  p.EndWindow();
  p.BeginWindow({0});
  m.core(0).Retire(300);
  WindowReport r = p.EndWindow();
  EXPECT_DOUBLE_EQ(r.instructions, 300.0);
}

TEST(ProfilerTest, WindowOpenTracksState) {
  MachineSim m(NoTlb(1));
  Profiler p(&m);
  EXPECT_FALSE(p.window_open());
  p.BeginWindow({0});
  EXPECT_TRUE(p.window_open());
  p.EndWindow();
  EXPECT_FALSE(p.window_open());
}

TEST(ModuleRegistryTest, RegistrationPastCapacityIsClamped) {
  MachineSim m(NoTlb(1));
  ModuleRegistry& reg = m.modules();
  // The machine pre-registers some modules; fill to the cap.
  std::vector<ModuleId> ids;
  while (reg.size() < kMaxModules) {
    ids.push_back(
        reg.Register("m" + std::to_string(reg.size()), false));
  }
  EXPECT_EQ(reg.size(), kMaxModules);
  // One past the cap: rejected, not out-of-bounds.
  const ModuleId overflow = reg.Register("one-too-many", false);
  EXPECT_EQ(overflow, kNoModule);
  EXPECT_EQ(reg.size(), kMaxModules);
  // Attribution to a clamped module is a safe no-op.
  {
    ScopedModule s(&m.core(0), overflow);
    m.core(0).Retire(100);
  }
  EXPECT_EQ(m.core(0).counters().instructions, 100u);
}

TEST(MachineConfigTest, Table1Geometry) {
  MachineConfig c;
  EXPECT_EQ(c.l1i.size_bytes, 32u * 1024);
  EXPECT_EQ(c.l1d.size_bytes, 32u * 1024);
  EXPECT_EQ(c.l2.size_bytes, 256u * 1024);
  EXPECT_EQ(c.llc.size_bytes, 20u * 1024 * 1024);
  EXPECT_EQ(c.issue_width, 4);
  EXPECT_DOUBLE_EQ(c.clock_ghz, 2.0);
}

}  // namespace
}  // namespace imoltp::mcsim
