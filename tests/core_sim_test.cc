#include "mcsim/core.h"

#include <gtest/gtest.h>

#include "mcsim/machine.h"

namespace imoltp::mcsim {
namespace {

MachineConfig TestConfig() {
  MachineConfig c;
  c.model_tlb = false;  // enabled selectively below
  return c;
}

TEST(CoreSimTest, ColdCodeFetchMissesAllLevels) {
  MachineSim m(TestConfig());
  CoreSim& core = m.core(0);
  CodeRegion r = m.code_space().Define(kNoModule, 640, 640, 100, 0.0);
  core.ExecuteRegion(r);
  EXPECT_EQ(core.counters().misses.l1i, 10u);
  EXPECT_EQ(core.counters().misses.l2i, 10u);
  EXPECT_EQ(core.counters().misses.llc_i, 10u);
  EXPECT_EQ(core.counters().instructions, 100u);
}

TEST(CoreSimTest, WarmCodeFetchHits) {
  MachineSim m(TestConfig());
  CoreSim& core = m.core(0);
  CodeRegion r = m.code_space().Define(kNoModule, 640, 640, 100, 0.0);
  core.ExecuteRegion(r);
  const auto before = core.counters().misses;
  core.ExecuteRegion(r);
  EXPECT_EQ(core.counters().misses.l1i, before.l1i);
  EXPECT_EQ(core.counters().instructions, 200u);
}

TEST(CoreSimTest, WindowedRegionTouchesOnlyWindowLines) {
  MachineSim m(TestConfig());
  CoreSim& core = m.core(0);
  // 100 lines total, 10 touched per execution.
  CodeRegion r = m.code_space().Define(kNoModule, 6400, 640, 50, 0.0);
  core.ExecuteRegion(r);
  EXPECT_EQ(core.counters().code_line_fetches, 10u);
}

TEST(CoreSimTest, WindowedRegionVariesStartAcrossExecutions) {
  MachineSim m(TestConfig());
  CoreSim& core = m.core(0);
  CodeRegion r = m.code_space().Define(kNoModule, 64 << 10, 1 << 10, 50,
                                       0.0);
  // Many executions of a 16-line window inside a 1024-line range should
  // keep producing cold lines (the windows move around).
  for (int i = 0; i < 50; ++i) core.ExecuteRegion(r);
  EXPECT_GT(core.counters().misses.l1i, 200u);
}

TEST(CoreSimTest, DataReadWalksHierarchy) {
  MachineSim m(TestConfig());
  CoreSim& core = m.core(0);
  core.Read(0x10000, 64);
  EXPECT_EQ(core.counters().misses.l1d, 1u);
  EXPECT_EQ(core.counters().misses.l2d, 1u);
  EXPECT_EQ(core.counters().misses.llc_d, 1u);
  core.Read(0x10000, 64);
  EXPECT_EQ(core.counters().misses.l1d, 1u);  // now resident
}

TEST(CoreSimTest, UnalignedAccessSpanningLinesTouchesBoth) {
  MachineSim m(TestConfig());
  CoreSim& core = m.core(0);
  core.Read(0x10000 + 60, 8);  // crosses a 64B boundary
  EXPECT_EQ(core.counters().data_accesses, 2u);
}

TEST(CoreSimTest, RetireAccumulatesBaseCyclesAtDefaultCpi) {
  MachineSim m(TestConfig());
  CoreSim& core = m.core(0);
  core.Retire(300);
  EXPECT_EQ(core.counters().instructions, 300u);
  EXPECT_NEAR(core.counters().base_cycles, 100.0, 0.5);  // cpi 1/3
}

TEST(CoreSimTest, RegionCpiOverridesDefault) {
  MachineSim m(TestConfig());
  CoreSim& core = m.core(0);
  CodeRegion r =
      m.code_space().Define(kNoModule, 64, 64, 1000, 0.0, /*cpi=*/0.9);
  core.ExecuteRegion(r);
  EXPECT_NEAR(core.counters().base_cycles, 900.0, 0.5);
}

TEST(CoreSimTest, MispredictionsAccumulateFractionally) {
  MachineSim m(TestConfig());
  CoreSim& core = m.core(0);
  // 10 mispredicts per k-instr, 500 instructions per execution:
  // 5 per execution.
  CodeRegion r = m.code_space().Define(kNoModule, 64, 64, 500, 10.0);
  for (int i = 0; i < 10; ++i) core.ExecuteRegion(r);
  EXPECT_EQ(core.counters().mispredictions, 50u);
}

TEST(CoreSimTest, ModuleAttributionFollowsScopes) {
  MachineSim m(TestConfig());
  CoreSim& core = m.core(0);
  const ModuleId mod = m.modules().Register("test", true);
  {
    ScopedModule scope(&core, mod);
    core.Read(0x20000, 8);
    core.Retire(40);
  }
  core.Retire(10);  // outside the scope
  EXPECT_EQ(core.counters().per_module[mod].instructions, 40u);
  EXPECT_EQ(core.counters().per_module[mod].misses.l1d, 1u);
  EXPECT_EQ(core.counters().per_module[kNoModule].instructions, 10u);
}

TEST(CoreSimTest, RegionExecutionAttributesToItsModule) {
  MachineSim m(TestConfig());
  CoreSim& core = m.core(0);
  const ModuleId mod = m.modules().Register("parser", false);
  CodeRegion r = m.code_space().Define(mod, 640, 640, 77, 0.0);
  core.ExecuteRegion(r);
  EXPECT_EQ(core.counters().per_module[mod].instructions, 77u);
  EXPECT_EQ(core.counters().per_module[mod].misses.l1i, 10u);
}

TEST(CoreSimTest, DisabledCoreIgnoresAllEvents) {
  MachineSim m(TestConfig());
  CoreSim& core = m.core(0);
  core.set_enabled(false);
  core.Read(0x1000, 64);
  core.Retire(100);
  core.BeginTransaction();
  CodeRegion r = m.code_space().Define(kNoModule, 640, 640, 10, 0.0);
  core.ExecuteRegion(r);
  EXPECT_EQ(core.counters().instructions, 0u);
  EXPECT_EQ(core.counters().data_accesses, 0u);
  EXPECT_EQ(core.counters().transactions, 0u);
}

TEST(CoreSimTest, ResetClearsCountersAndCaches) {
  MachineSim m(TestConfig());
  CoreSim& core = m.core(0);
  core.Read(0x1000, 8);
  core.Reset();
  EXPECT_EQ(core.counters().data_accesses, 0u);
  core.Read(0x1000, 8);
  EXPECT_EQ(core.counters().misses.l1d, 1u);  // cold again
}

TEST(CoreSimTest, TlbMissTriggersPageWalkAccess) {
  MachineConfig cfg;
  cfg.model_tlb = true;
  MachineSim m(cfg);
  CoreSim& core = m.core(0);
  core.Read(0x4000000, 8);
  // One logical access plus the walker's PTE line access.
  EXPECT_EQ(core.counters().data_accesses, 2u);
  EXPECT_EQ(core.counters().tlb_misses, 1u);
  // Same page: TLB now hits, single access.
  core.Read(0x4000040, 8);
  EXPECT_EQ(core.counters().data_accesses, 3u);
  EXPECT_EQ(core.counters().tlb_misses, 1u);
}

TEST(CoreSimTest, TlbCapacityMissesOnHugeWorkingSet) {
  MachineConfig cfg;
  cfg.model_tlb = true;
  MachineSim m(cfg);
  CoreSim& core = m.core(0);
  // Touch 4096 distinct pages, twice: far beyond 64+512 TLB entries.
  for (int pass = 0; pass < 2; ++pass) {
    for (uint64_t p = 0; p < 4096; ++p) {
      core.Read((1ULL << 32) + p * 4096, 8);
    }
  }
  EXPECT_GT(core.counters().tlb_misses, 4096u);
}

TEST(CoreSimTest, TransactionsCount) {
  MachineSim m(TestConfig());
  CoreSim& core = m.core(0);
  core.BeginTransaction();
  core.BeginTransaction();
  EXPECT_EQ(core.counters().transactions, 2u);
}

}  // namespace
}  // namespace imoltp::mcsim
