#include "core/experiment.h"

#include <gtest/gtest.h>

#include "core/microbench.h"

namespace imoltp::core {
namespace {

using engine::EngineKind;

ExperimentConfig FastConfig(EngineKind kind) {
  ExperimentConfig cfg;
  cfg.engine = kind;
  cfg.warmup_txns = 200;
  cfg.measure_txns = 500;
  return cfg;
}

TEST(ExperimentTest, ReportHasSaneShape) {
  MicroConfig mcfg;
  mcfg.nominal_bytes = 1 << 20;
  MicroBenchmark wl(mcfg);
  const auto run = RunExperiment(FastConfig(EngineKind::kVoltDb), &wl);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const mcsim::WindowReport r = *run;
  EXPECT_EQ(r.num_workers, 1);
  EXPECT_DOUBLE_EQ(r.transactions, 500.0);
  EXPECT_GT(r.ipc, 0.0);
  EXPECT_LT(r.ipc, 4.0);  // cannot exceed the issue width
  EXPECT_GT(r.instructions_per_txn, 1000.0);
  EXPECT_GT(r.cycles_per_txn, 0.0);
  EXPECT_GT(r.stalls_per_kinstr.total(), 0.0);
}

TEST(ExperimentTest, ReproducibleAcrossRuns) {
  // Workload choices are fully deterministic (seeded PRNGs). Physical
  // placement is not: real allocations land at different addresses per
  // run, which perturbs cache-set mapping slightly. Retired work must
  // be identical; derived metrics must agree within a small tolerance.
  MicroConfig mcfg;
  mcfg.nominal_bytes = 1 << 20;
  MicroBenchmark wl1(mcfg), wl2(mcfg);
  const auto r1 =
      RunExperiment(FastConfig(EngineKind::kShoreMt), &wl1).value();
  const auto r2 =
      RunExperiment(FastConfig(EngineKind::kShoreMt), &wl2).value();
  EXPECT_DOUBLE_EQ(r1.instructions, r2.instructions);
  EXPECT_DOUBLE_EQ(r1.transactions, r2.transactions);
  EXPECT_NEAR(r1.ipc, r2.ipc, 0.02 * r1.ipc);
}

TEST(ExperimentTest, SeedChangesTheRun) {
  MicroConfig mcfg;
  mcfg.nominal_bytes = 1 << 20;
  MicroBenchmark wl1(mcfg), wl2(mcfg);
  ExperimentConfig cfg = FastConfig(EngineKind::kShoreMt);
  const auto r1 = RunExperiment(cfg, &wl1).value();
  cfg.seed = 777;
  const auto r2 = RunExperiment(cfg, &wl2).value();
  // Different random keys: same shape, not bit-identical counters.
  EXPECT_NE(r1.misses.l1d, r2.misses.l1d);
}

TEST(ExperimentTest, MultiWorkerRunsUseAllCores) {
  MicroConfig mcfg;
  mcfg.nominal_bytes = 4 << 20;
  mcfg.num_partitions = 2;
  MicroBenchmark wl(mcfg);
  ExperimentConfig cfg = FastConfig(EngineKind::kHyPer);
  cfg.num_workers = 2;
  auto runner = ExperimentRunner::Create(cfg, &wl);
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  const auto r = (*runner)->Run(&wl).value();
  EXPECT_EQ(r.num_workers, 2);
  EXPECT_DOUBLE_EQ(r.transactions, 500.0);  // per-worker average
  EXPECT_EQ((*runner)->machine()->num_cores(), 2);
  EXPECT_GT((*runner)->machine()->core(1).counters().transactions, 0u);
}

TEST(ExperimentTest, RunnerSupportsMultipleWindows) {
  MicroConfig ro_cfg;
  ro_cfg.nominal_bytes = 1 << 20;
  MicroBenchmark ro(ro_cfg);
  MicroConfig rw_cfg = ro_cfg;
  rw_cfg.read_write = true;
  MicroBenchmark rw(rw_cfg);

  auto runner =
      ExperimentRunner::Create(FastConfig(EngineKind::kDbmsM), &ro);
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  const auto r1 = (*runner)->Run(&ro).value();
  const auto r2 = (*runner)->Run(&rw).value();
  // The read-write variant retires more instructions per transaction
  // (update path) than the read-only one on the same database.
  EXPECT_GT(r2.instructions_per_txn, r1.instructions_per_txn);
}

TEST(ExperimentTest, AbortsAreCountedNotFatal) {
  MicroConfig mcfg;
  mcfg.nominal_bytes = 1 << 20;
  MicroBenchmark wl(mcfg);
  auto runner =
      ExperimentRunner::Create(FastConfig(EngineKind::kHyPer), &wl);
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();
  ASSERT_TRUE((*runner)->Run(&wl).ok());
  EXPECT_EQ((*runner)->aborts(), 0u);
}

}  // namespace
}  // namespace imoltp::core
