// Time-resolved profiling (docs/OBSERVABILITY.md): the periodic counter
// sampler, the windowed time-series it feeds, and the experiment-level
// contracts built on top of it.
//
// Two properties are load-bearing enough to enforce here:
//
//  1. Determinism. The sample clock is the retirement clock (base
//     cycles), which depends only on the retired instruction stream —
//     so same seed + a serialized ParallelMode must reproduce bucket
//     boundaries and retired-work columns bit-identically on every
//     engine, exactly like the whole-window counters already do
//     (tests/parallel_test.cc).
//
//  2. No observer effect. Arming the sampler reads counters and never
//     writes them: a sampled run must retire the identical stream an
//     unsampled run does, both at the machine level (same literal
//     address trace) and end-to-end through an engine.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/microbench.h"
#include "core/tpcc.h"
#include "mcsim/machine.h"
#include "mcsim/profiler.h"
#include "mcsim/sampler.h"

namespace imoltp {
namespace {

using core::ExperimentConfig;
using core::MicroBenchmark;
using core::MicroConfig;
using core::ParallelMode;
using core::RunExperiment;
using engine::EngineKind;
using mcsim::CoreCounters;
using mcsim::CoreSampler;
using mcsim::CounterSample;
using mcsim::CycleModelParams;
using mcsim::MachineConfig;
using mcsim::MachineSim;
using mcsim::Profiler;
using mcsim::SamplerConfig;
using mcsim::WindowReport;

MachineConfig NoTlb(int cores = 1) {
  MachineConfig c;
  c.model_tlb = false;
  c.num_cores = cores;
  return c;
}

// ------------------------------------------------------ CoreSampler

CoreCounters AtBaseCycles(double base_cycles) {
  CoreCounters c;
  c.base_cycles = base_cycles;
  c.instructions = static_cast<uint64_t>(base_cycles * 3.0);
  return c;
}

TEST(CoreSamplerTest, SamplesOnEveryPeriodCrossing) {
  CycleModelParams params;
  SamplerConfig config;
  config.every_cycles = 100;
  CoreSampler s(config, &params);
  s.Restart(AtBaseCycles(0));

  s.MaybeSample(AtBaseCycles(50));   // before the first boundary
  EXPECT_EQ(s.seq(), 0u);
  s.MaybeSample(AtBaseCycles(100));  // crosses 100
  s.MaybeSample(AtBaseCycles(199));  // not yet at 200
  s.MaybeSample(AtBaseCycles(200));  // crosses 200
  EXPECT_EQ(s.seq(), 2u);
  EXPECT_EQ(s.dropped(), 0u);

  const std::vector<CounterSample> samples = s.SamplesSince(0);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].retire_cycles, 100.0);
  EXPECT_DOUBLE_EQ(samples[1].retire_cycles, 200.0);
}

TEST(CoreSamplerTest, BurstAcrossManyPeriodsEmitsOneSample) {
  // A single huge retire burst advances the clock past several
  // boundaries; it must emit one snapshot, not one per boundary
  // (duplicate snapshots would create zero-width buckets).
  CycleModelParams params;
  SamplerConfig config;
  config.every_cycles = 100;
  CoreSampler s(config, &params);
  s.Restart(AtBaseCycles(0));

  s.MaybeSample(AtBaseCycles(950));  // jumps over 100..900 at once
  EXPECT_EQ(s.seq(), 1u);
  // The clock is re-phased past the burst: the next boundary is 1000.
  s.MaybeSample(AtBaseCycles(999));
  EXPECT_EQ(s.seq(), 1u);
  s.MaybeSample(AtBaseCycles(1000));
  EXPECT_EQ(s.seq(), 2u);
}

TEST(CoreSamplerTest, RingWrapKeepsNewestAndCountsDropped) {
  CycleModelParams params;
  SamplerConfig config;
  config.every_cycles = 10;
  config.capacity = 4;
  CoreSampler s(config, &params);
  s.Restart(AtBaseCycles(0));

  for (int i = 1; i <= 10; ++i) {
    s.MaybeSample(AtBaseCycles(10.0 * i));
  }
  EXPECT_EQ(s.seq(), 10u);
  EXPECT_EQ(s.dropped(), 6u);

  // Only the newest `capacity` samples survive, oldest first.
  const std::vector<CounterSample> samples = s.SamplesSince(0);
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_DOUBLE_EQ(samples.front().retire_cycles, 70.0);
  EXPECT_DOUBLE_EQ(samples.back().retire_cycles, 100.0);
}

TEST(CoreSamplerTest, RestartRephasesToCurrentCounters) {
  CycleModelParams params;
  SamplerConfig config;
  config.every_cycles = 100;
  CoreSampler s(config, &params);
  s.Restart(AtBaseCycles(0));
  s.MaybeSample(AtBaseCycles(500));
  ASSERT_EQ(s.seq(), 1u);

  // Restart mid-stream (the profiler does this at window begin): the
  // ring rewinds and the next boundary is relative to the restart
  // point, not to cycle zero.
  s.Restart(AtBaseCycles(500));
  EXPECT_EQ(s.seq(), 0u);
  s.MaybeSample(AtBaseCycles(599));
  EXPECT_EQ(s.seq(), 0u);
  s.MaybeSample(AtBaseCycles(600));
  EXPECT_EQ(s.seq(), 1u);
}

// ---------------------------------------------- machine + profiler

TEST(MachineSamplerTest, ArmAndDisarmFanOutToEveryCore) {
  MachineSim m(NoTlb(2));
  EXPECT_EQ(m.sampler(0), nullptr);
  EXPECT_EQ(m.sampler(1), nullptr);

  SamplerConfig config;
  config.every_cycles = 100;
  m.ArmSampler(config);
  ASSERT_NE(m.sampler(0), nullptr);
  ASSERT_NE(m.sampler(1), nullptr);
  EXPECT_EQ(m.sampler(0)->every_cycles(), 100u);

  m.ArmSampler(SamplerConfig{});  // every_cycles == 0 disarms
  EXPECT_EQ(m.sampler(0), nullptr);
  EXPECT_EQ(m.sampler(1), nullptr);
}

TEST(MachineSamplerTest, NoObserverEffectOnIdenticalAddressTrace) {
  // Same literal address trace through an armed and an unarmed machine:
  // every counter must agree exactly. Sampling reads counters, never
  // writes them.
  MachineSim sampled(NoTlb(1));
  MachineSim plain(NoTlb(1));
  SamplerConfig config;
  config.every_cycles = 50;
  sampled.ArmSampler(config);

  for (MachineSim* m : {&sampled, &plain}) {
    mcsim::CoreSim& core = m->core(0);
    for (int t = 0; t < 32; ++t) {
      core.BeginTransaction();
      for (int r = 0; r < 8; ++r) {
        core.Read(0x10000 + 64 * ((t * 7 + r) % 128), 8);
        core.Retire(40);
      }
      core.Write(0x80000 + 64 * (t % 16), 8);
      core.Retire(25);
    }
    core.CountAbort();
  }
  // The sampler did fire...
  ASSERT_NE(sampled.sampler(0), nullptr);
  EXPECT_GT(sampled.sampler(0)->seq(), 0u);

  // ...and perturbed nothing.
  const CoreCounters& a = sampled.core(0).counters();
  const CoreCounters& b = plain.core(0).counters();
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.aborted_txns, b.aborted_txns);
  EXPECT_EQ(a.data_accesses, b.data_accesses);
  EXPECT_EQ(a.code_line_fetches, b.code_line_fetches);
  EXPECT_DOUBLE_EQ(a.base_cycles, b.base_cycles);
  EXPECT_EQ(a.misses.l1d, b.misses.l1d);
  EXPECT_EQ(a.misses.l1i, b.misses.l1i);
  EXPECT_EQ(a.misses.l2d, b.misses.l2d);
  EXPECT_EQ(a.misses.l2i, b.misses.l2i);
  EXPECT_EQ(a.misses.llc_d, b.misses.llc_d);
  EXPECT_EQ(a.misses.llc_i, b.misses.llc_i);
}

TEST(ProfilerTimeseriesTest, WindowRestartsSamplerAndBucketsAreRelative) {
  MachineSim m(NoTlb(1));
  SamplerConfig config;
  config.every_cycles = 100;  // 300 instructions at the inherent CPI
  m.ArmSampler(config);

  // Pre-window work (warm-up): takes samples that must NOT leak into
  // the window's series.
  m.core(0).Retire(900);  // base_cycles = 300
  EXPECT_GT(m.sampler(0)->seq(), 0u);

  Profiler p(&m);
  p.BeginWindow({0});
  EXPECT_EQ(m.sampler(0)->seq(), 0u);  // restarted at window begin
  m.core(0).Retire(300);               // +100 base cycles -> sample
  m.core(0).Retire(300);
  m.core(0).Retire(300);
  const WindowReport r = p.EndWindow();

  EXPECT_EQ(r.sample_every, 100u);
  ASSERT_EQ(r.timeseries.size(), 1u);
  const mcsim::CoreSeries& series = r.timeseries[0];
  EXPECT_EQ(series.core, 0);
  EXPECT_EQ(series.dropped, 0u);
  // Three samples, window ending exactly on the last boundary: three
  // buckets, no closing partial. Boundaries are window-relative.
  ASSERT_EQ(series.buckets.size(), 3u);
  for (size_t i = 0; i < series.buckets.size(); ++i) {
    const mcsim::SeriesBucket& b = series.buckets[i];
    EXPECT_DOUBLE_EQ(b.t0, 100.0 * static_cast<double>(i));
    EXPECT_DOUBLE_EQ(b.t1, 100.0 * static_cast<double>(i + 1));
    EXPECT_EQ(b.instructions, 300u);
  }
}

TEST(ProfilerTimeseriesTest, ClosingPartialBucketCoversWindowTail) {
  MachineSim m(NoTlb(1));
  SamplerConfig config;
  config.every_cycles = 100;
  m.ArmSampler(config);

  Profiler p(&m);
  p.BeginWindow({0});
  m.core(0).Retire(300);  // sample at t=100
  m.core(0).Retire(120);  // window ends at t=140, past the boundary
  const WindowReport r = p.EndWindow();

  ASSERT_EQ(r.timeseries.size(), 1u);
  const auto& buckets = r.timeseries[0].buckets;
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[1].t0, 100.0);
  EXPECT_DOUBLE_EQ(buckets[1].t1, 140.0);
  EXPECT_EQ(buckets[0].instructions + buckets[1].instructions, 420u);
}

TEST(ProfilerTimeseriesTest, UnsampledWindowHasEmptySeries) {
  MachineSim m(NoTlb(1));
  Profiler p(&m);
  p.BeginWindow({0});
  m.core(0).Retire(900);
  const WindowReport r = p.EndWindow();
  EXPECT_EQ(r.sample_every, 0u);
  EXPECT_TRUE(r.timeseries.empty());
  EXPECT_FALSE(r.convergence.checked);
}

// ---------------------------------------------------- end-to-end

constexpr EngineKind kAllEngines[] = {
    EngineKind::kShoreMt, EngineKind::kDbmsD, EngineKind::kVoltDb,
    EngineKind::kHyPer, EngineKind::kDbmsM};

ExperimentConfig SampledConfig(EngineKind kind, ParallelMode mode) {
  ExperimentConfig cfg;
  cfg.engine = kind;
  cfg.num_workers = 2;
  cfg.warmup_txns = 100;
  cfg.measure_txns = 300;
  cfg.seed = 11;
  cfg.parallel_mode = mode;
  cfg.sampler.every_cycles = 2000;
  return cfg;
}

MicroConfig SmallMicro() {
  MicroConfig mcfg;
  mcfg.nominal_bytes = 2ULL << 20;
  mcfg.num_partitions = 2;
  return mcfg;
}

/// The placement-independent subset of a sampled series, as a string:
/// bucket boundaries (retirement clock) and retired-work columns.
/// Misses, model cycles, IPC, and TLB walks are deliberately absent —
/// they hash host addresses and carry per-run placement noise.
std::string DeterministicFingerprint(const WindowReport& r) {
  std::string out =
      "every=" + std::to_string(r.sample_every) + "\n";
  for (const mcsim::CoreSeries& series : r.timeseries) {
    out += "core " + std::to_string(series.core) +
           " dropped=" + std::to_string(series.dropped) + "\n";
    for (const mcsim::SeriesBucket& b : series.buckets) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "  [%.17g,%.17g) i=%llu t=%llu a=%llu m=%llu\n",
                    b.t0, b.t1,
                    static_cast<unsigned long long>(b.instructions),
                    static_cast<unsigned long long>(b.transactions),
                    static_cast<unsigned long long>(b.aborted_txns),
                    static_cast<unsigned long long>(b.mispredictions));
      out += line;
    }
  }
  return out;
}

TEST(SampledExperimentTest, DeterministicSeriesOnAllEngines) {
  // Same seed, serial vs. turnstile-deterministic threading: the
  // deterministic fingerprint must match byte for byte on every
  // engine. This is the time-resolved extension of
  // ParallelModeTest.DeterministicMatchesSerialOnAllEngines.
  for (EngineKind kind : kAllEngines) {
    SCOPED_TRACE(engine::EngineKindName(kind));
    MicroConfig mcfg = SmallMicro();
    MicroBenchmark wl_serial(mcfg), wl_det(mcfg);

    auto serial = RunExperiment(
        SampledConfig(kind, ParallelMode::kSerial), &wl_serial);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    auto det = RunExperiment(
        SampledConfig(kind, ParallelMode::kDeterministic), &wl_det);
    ASSERT_TRUE(det.ok()) << det.status().ToString();

    ASSERT_EQ(serial->timeseries.size(), 2u);
    EXPECT_GT(serial->timeseries[0].buckets.size(), 1u);
    EXPECT_EQ(DeterministicFingerprint(*det),
              DeterministicFingerprint(*serial));
  }
}

TEST(SampledExperimentTest, SamplingHasNoObserverEffect) {
  // End-to-end restatement of the machine-level guarantee: a sampled
  // run and an unsampled run of the same cell retire the identical
  // stream. Retired work compares bit-identically; miss-derived
  // metrics carry only the usual cross-run placement noise.
  MicroConfig mcfg = SmallMicro();
  MicroBenchmark wl_plain(mcfg), wl_sampled(mcfg);

  ExperimentConfig cfg =
      SampledConfig(EngineKind::kVoltDb, ParallelMode::kSerial);
  cfg.sampler.every_cycles = 0;
  auto plain = RunExperiment(cfg, &wl_plain);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  cfg.sampler.every_cycles = 1000;
  auto sampled = RunExperiment(cfg, &wl_sampled);
  ASSERT_TRUE(sampled.ok()) << sampled.status().ToString();

  EXPECT_TRUE(plain->timeseries.empty());
  EXPECT_FALSE(sampled->timeseries.empty());
  EXPECT_DOUBLE_EQ(sampled->instructions, plain->instructions);
  EXPECT_DOUBLE_EQ(sampled->transactions, plain->transactions);
  EXPECT_DOUBLE_EQ(sampled->mispredictions, plain->mispredictions);
  EXPECT_DOUBLE_EQ(sampled->base_cycles, plain->base_cycles);
  EXPECT_NEAR(sampled->ipc, plain->ipc, 0.02 * plain->ipc);
}

TEST(SampledExperimentTest, BucketsTileTheWindowExactly) {
  MicroConfig mcfg = SmallMicro();
  MicroBenchmark wl(mcfg);
  const auto run = RunExperiment(
      SampledConfig(EngineKind::kHyPer, ParallelMode::kSerial), &wl);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // Buckets are contiguous from the window origin, and — with no ring
  // drops — their retired-work columns sum to the window totals.
  uint64_t instructions = 0;
  uint64_t transactions = 0;
  for (const mcsim::CoreSeries& series : run->timeseries) {
    ASSERT_FALSE(series.buckets.empty());
    EXPECT_EQ(series.dropped, 0u);
    EXPECT_DOUBLE_EQ(series.buckets.front().t0, 0.0);
    for (size_t i = 0; i < series.buckets.size(); ++i) {
      const mcsim::SeriesBucket& b = series.buckets[i];
      EXPECT_LT(b.t0, b.t1);
      if (i > 0) EXPECT_DOUBLE_EQ(b.t0, series.buckets[i - 1].t1);
      instructions += b.instructions;
      transactions += b.transactions;
    }
  }
  const int workers = run->num_workers;
  EXPECT_DOUBLE_EQ(static_cast<double>(instructions),
                   run->instructions * workers);
  EXPECT_DOUBLE_EQ(static_cast<double>(transactions),
                   run->transactions * workers);
}

TEST(SampledExperimentTest, RingWrapDegradesToTruncatedSeries) {
  MicroConfig mcfg = SmallMicro();
  MicroBenchmark wl(mcfg);
  ExperimentConfig cfg =
      SampledConfig(EngineKind::kVoltDb, ParallelMode::kSerial);
  cfg.sampler.capacity = 8;  // far fewer slots than samples
  const auto run = RunExperiment(cfg, &wl);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // The tail of the window survives; the loss is visible, not silent.
  for (const mcsim::CoreSeries& series : run->timeseries) {
    EXPECT_GT(series.dropped, 0u);
    EXPECT_LE(series.buckets.size(), 9u);  // window start + ring + tail
    for (size_t i = 1; i < series.buckets.size(); ++i) {
      EXPECT_LT(series.buckets[i].t0, series.buckets[i].t1);
      EXPECT_GE(series.buckets[i].t0, series.buckets[i - 1].t1);
    }
  }
}

TEST(SampledExperimentTest, ConvergenceVerdictFollowsTolerance) {
  MicroConfig mcfg = SmallMicro();
  MicroBenchmark wl(mcfg);
  ExperimentConfig cfg =
      SampledConfig(EngineKind::kVoltDb, ParallelMode::kSerial);
  const auto run = RunExperiment(cfg, &wl);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const mcsim::ConvergenceCheck& c = run->convergence;
  ASSERT_TRUE(c.checked);
  EXPECT_DOUBLE_EQ(c.tolerance, cfg.convergence_rtol);
  EXPECT_GT(c.first_half_ipc, 0.0);
  EXPECT_GT(c.second_half_ipc, 0.0);
  EXPECT_GE(c.divergence, 0.0);
  EXPECT_EQ(c.converged, c.divergence <= c.tolerance);
}

TEST(SampledExperimentTest, UnsampledRunSkipsConvergenceCheck) {
  MicroConfig mcfg = SmallMicro();
  MicroBenchmark wl(mcfg);
  ExperimentConfig cfg =
      SampledConfig(EngineKind::kVoltDb, ParallelMode::kSerial);
  cfg.sampler.every_cycles = 0;
  const auto run = RunExperiment(cfg, &wl);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_FALSE(run->convergence.checked);
  EXPECT_TRUE(run->convergence.converged);  // never fails a silent check
}

// ------------------------------------------- module x txn matrix

TEST(TxnMatrixTest, MicroWorkloadHasOneFullyAttributedRow) {
  MicroConfig mcfg = SmallMicro();
  MicroBenchmark wl(mcfg);
  ExperimentConfig cfg =
      SampledConfig(EngineKind::kVoltDb, ParallelMode::kSerial);
  const auto run = RunExperiment(cfg, &wl);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  ASSERT_EQ(run->txn_module_matrix.size(), 1u);
  const mcsim::TxnTypeShare& row = run->txn_module_matrix[0];
  EXPECT_EQ(row.txn_type, wl.name());
  EXPECT_EQ(row.count, cfg.measure_txns *
                           static_cast<uint64_t>(cfg.num_workers));
  EXPECT_DOUBLE_EQ(row.fraction, 1.0);
  EXPECT_GT(row.cycles, 0.0);
  ASSERT_FALSE(row.modules.empty());
  double module_sum = 0.0;
  for (const mcsim::ModuleShare& share : row.modules) {
    module_sum += share.fraction;
  }
  EXPECT_NEAR(module_sum, 1.0, 1e-9);
}

TEST(TxnMatrixTest, TpccMatrixCoversTheMix) {
  core::TpccConfig tcfg;
  tcfg.warehouses = 2;
  tcfg.orders_per_district = 40;
  tcfg.num_partitions = 2;
  core::TpccBenchmark wl(tcfg);

  ExperimentConfig cfg =
      SampledConfig(EngineKind::kVoltDb, ParallelMode::kSerial);
  cfg.measure_txns = 400;  // enough for the 4% mix classes to appear
  const auto run = RunExperiment(cfg, &wl);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // Every row is one of the five procedures; together they account for
  // every measured transaction and all of the matrix's cycles.
  const std::set<std::string> kProcedures = {
      "new_order", "payment", "order_status", "delivery", "stock_level"};
  uint64_t count_sum = 0;
  double fraction_sum = 0.0;
  for (const mcsim::TxnTypeShare& row : run->txn_module_matrix) {
    EXPECT_EQ(kProcedures.count(row.txn_type), 1u) << row.txn_type;
    EXPECT_GT(row.count, 0u);
    count_sum += row.count;
    fraction_sum += row.fraction;
  }
  EXPECT_EQ(run->txn_module_matrix.size(), kProcedures.size());
  EXPECT_EQ(count_sum, cfg.measure_txns *
                           static_cast<uint64_t>(cfg.num_workers));
  EXPECT_NEAR(fraction_sum, 1.0, 1e-9);

  // The dominant mix classes dominate the matrix too.
  uint64_t new_order = 0, stock_level = 0;
  for (const mcsim::TxnTypeShare& row : run->txn_module_matrix) {
    if (row.txn_type == "new_order") new_order = row.count;
    if (row.txn_type == "stock_level") stock_level = row.count;
  }
  EXPECT_GT(new_order, stock_level);
}

TEST(TxnMatrixTest, WorkloadDefaultsToSingleTypeVocabulary) {
  MicroConfig mcfg = SmallMicro();
  MicroBenchmark wl(mcfg);
  EXPECT_EQ(wl.NumTransactionTypes(), 1);
  EXPECT_STREQ(wl.TransactionTypeName(0), wl.name());
  EXPECT_EQ(wl.LastTransactionType(0), 0);

  core::TpccConfig tcfg;
  core::TpccBenchmark tpcc(tcfg);
  EXPECT_EQ(tpcc.NumTransactionTypes(), 5);
  EXPECT_STREQ(tpcc.TransactionTypeName(0), "new_order");
  EXPECT_STREQ(tpcc.TransactionTypeName(4), "stock_level");
}

}  // namespace
}  // namespace imoltp
