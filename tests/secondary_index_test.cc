// Secondary-index tests: maintenance on insert/delete, prefix scans,
// rollback, recovery replay, and the TPC-C by-last-name access paths.

#include <gtest/gtest.h>

#include "core/tpcc.h"
#include "engine/engine.h"
#include "mcsim/machine.h"

namespace imoltp::engine {
namespace {

mcsim::MachineConfig NoTlb() {
  mcsim::MachineConfig c;
  c.model_tlb = false;
  return c;
}

// Table: (key Long, group Long, filler String). Secondary: group|key.
index::Key GroupSecondary(const storage::Schema& schema,
                          const uint8_t* row) {
  const uint64_t key = static_cast<uint64_t>(schema.GetLong(row, 0));
  const uint64_t group = static_cast<uint64_t>(schema.GetLong(row, 1));
  return index::Key::FromUint64((group << 32) | key);
}

void GroupedGenerator(const storage::Schema& schema, storage::RowId r,
                      uint64_t seed, uint8_t* out) {
  (void)seed;
  schema.SetLong(out, 0, static_cast<int64_t>(r));
  schema.SetLong(out, 1, static_cast<int64_t>(r % 10));  // group
  std::memset(schema.ColumnPtr(out, 2), 'x', storage::kStringBytes);
}

TableDef GroupedTable(uint64_t rows) {
  TableDef def;
  def.name = "grouped";
  def.schema = storage::Schema({storage::ColumnType::kLong,
                                storage::ColumnType::kLong,
                                storage::ColumnType::kString});
  def.initial_rows = rows;
  def.generator = GroupedGenerator;
  def.secondaries.push_back({"by-group", GroupSecondary});
  return def;
}

constexpr EngineKind kAllEngines[] = {
    EngineKind::kShoreMt, EngineKind::kDbmsD, EngineKind::kVoltDb,
    EngineKind::kHyPer, EngineKind::kDbmsM};

class SecondaryIndexTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  SecondaryIndexTest()
      : machine_(NoTlb()),
        engine_(CreateEngine(GetParam(), &machine_, EngineOptions())) {
    EXPECT_TRUE(engine_->CreateDatabase({GroupedTable(1000)}).ok());
  }

  Status Run(const std::function<Status(TxnContext&)>& body) {
    TxnRequest req;
    req.key_space = 1000;
    return engine_->Execute(0, req, body);
  }

  /// Scans group 7's members and returns their primary keys.
  std::vector<int64_t> Group7() {
    std::vector<int64_t> keys;
    EXPECT_TRUE(Run([&](TxnContext& ctx) {
                  std::vector<storage::RowId> rows;
                  Status s = ctx.ScanSecondary(
                      0, 0, index::Key::FromUint64(7ULL << 32), 200,
                      &rows);
                  if (!s.ok()) return s;
                  const storage::Schema& schema = GroupedTable(0).schema;
                  uint8_t row[160];
                  for (storage::RowId r : rows) {
                    s = ctx.Read(0, r, row);
                    if (!s.ok()) return s;
                    if (schema.GetLong(row, 1) != 7) break;  // past group
                    keys.push_back(schema.GetLong(row, 0));
                  }
                  return Status::Ok();
                }).ok());
    return keys;
  }

  mcsim::MachineSim machine_;
  std::unique_ptr<Engine> engine_;
};

TEST_P(SecondaryIndexTest, PrefixScanFindsAllGroupMembers) {
  const std::vector<int64_t> keys = Group7();
  ASSERT_EQ(keys.size(), 100u);  // 1000 rows, 10 groups
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i] % 10, 7);
    if (i > 0) EXPECT_LT(keys[i - 1], keys[i]);  // ordered by key
  }
}

TEST_P(SecondaryIndexTest, InsertMaintainsSecondary) {
  const storage::Schema schema = GroupedTable(0).schema;
  uint8_t row[160];
  schema.SetLong(row, 0, 5007);
  schema.SetLong(row, 1, 7);
  std::memset(schema.ColumnPtr(row, 2), 'x', storage::kStringBytes);
  ASSERT_TRUE(Run([&](TxnContext& ctx) {
                return ctx.Insert(0, row,
                                  index::Key::FromUint64(5007));
              }).ok());
  const std::vector<int64_t> keys = Group7();
  EXPECT_EQ(keys.size(), 101u);
  EXPECT_EQ(keys.back(), 5007);
}

TEST_P(SecondaryIndexTest, DeleteMaintainsSecondary) {
  ASSERT_TRUE(Run([&](TxnContext& ctx) {
                storage::RowId rid;
                Status s =
                    ctx.Probe(0, index::Key::FromUint64(17), &rid);
                if (!s.ok()) return s;
                return ctx.Delete(0, rid, index::Key::FromUint64(17));
              }).ok());
  const std::vector<int64_t> keys = Group7();
  EXPECT_EQ(keys.size(), 99u);
  for (int64_t k : keys) EXPECT_NE(k, 17);
}

TEST_P(SecondaryIndexTest, AbortedInsertLeavesSecondaryClean) {
  const storage::Schema schema = GroupedTable(0).schema;
  uint8_t row[160];
  schema.SetLong(row, 0, 6007);
  schema.SetLong(row, 1, 7);
  std::memset(schema.ColumnPtr(row, 2), 'x', storage::kStringBytes);
  const Status s = Run([&](TxnContext& ctx) {
    Status st = ctx.Insert(0, row, index::Key::FromUint64(6007));
    if (!st.ok()) return st;
    storage::RowId rid;
    return ctx.Probe(0, index::Key::FromUint64(99999999), &rid);  // fail
  });
  ASSERT_FALSE(s.ok());
  const std::vector<int64_t> keys = Group7();
  EXPECT_EQ(keys.size(), 100u);
  for (int64_t k : keys) EXPECT_NE(k, 6007);
}

TEST_P(SecondaryIndexTest, OutOfRangeSecondaryIdRejected) {
  const Status s = Run([&](TxnContext& ctx) {
    std::vector<storage::RowId> rows;
    return ctx.ScanSecondary(0, 3, index::Key::FromUint64(0), 1, &rows);
  });
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, SecondaryIndexTest, ::testing::ValuesIn(kAllEngines),
    [](const ::testing::TestParamInfo<EngineKind>& i) {
      std::string n = EngineKindName(i.param);
      for (char& c : n) {
        if (c == '-' || c == ' ') c = '_';
      }
      return n;
    });

TEST(SecondaryRecoveryTest, ReplayRebuildsSecondaries) {
  mcsim::MachineSim m(NoTlb());
  auto engine = CreateEngine(EngineKind::kHyPer, &m, EngineOptions());
  ASSERT_TRUE(engine->CreateDatabase({GroupedTable(100)}).ok());

  const storage::Schema schema = GroupedTable(0).schema;
  uint8_t row[160];
  schema.SetLong(row, 0, 907);
  schema.SetLong(row, 1, 7);
  std::memset(schema.ColumnPtr(row, 2), 'x', storage::kStringBytes);
  TxnRequest req;
  req.key_space = 100;
  ASSERT_TRUE(engine
                  ->Execute(0, req,
                            [&](TxnContext& ctx) {
                              return ctx.Insert(
                                  0, row, index::Key::FromUint64(907));
                            })
                  .ok());

  mcsim::MachineSim fresh(NoTlb());
  auto recovered = CreateEngine(EngineKind::kHyPer, &fresh,
                                EngineOptions());
  ASSERT_TRUE(recovered->CreateDatabase({GroupedTable(100)}).ok());
  ASSERT_TRUE(recovered->Replay(engine->StableLog()).ok());

  std::vector<storage::RowId> rows;
  ASSERT_TRUE(recovered
                  ->Execute(0, req,
                            [&](TxnContext& ctx) {
                              return ctx.ScanSecondary(
                                  0, 0,
                                  index::Key::FromUint64(
                                      (7ULL << 32) | 907),
                                  1, &rows);
                            })
                  .ok());
  ASSERT_EQ(rows.size(), 1u);
}

TEST(TpccSecondaryTest, CustomerNameKeysRoundTrip) {
  using core::TpccBenchmark;
  const uint64_t key = TpccBenchmark::CustomerNameKey(3, 9, 123, 2123);
  EXPECT_EQ(TpccBenchmark::LastNameBucket(2123), 123u);
  // Prefix ordering: same (w,d,bucket) sorts adjacent, below next bucket.
  EXPECT_LT(key, TpccBenchmark::CustomerNameKey(3, 9, 124, 0));
  EXPECT_GT(key, TpccBenchmark::CustomerNameKey(3, 9, 123, 0));
}

TEST(TpccSecondaryTest, OrderCustomerKeysSortByOrderId) {
  using core::TpccBenchmark;
  EXPECT_LT(TpccBenchmark::OrderCustomerKey(1, 2, 55, 10),
            TpccBenchmark::OrderCustomerKey(1, 2, 55, 11));
  EXPECT_LT(TpccBenchmark::OrderCustomerKey(1, 2, 55, 999999),
            TpccBenchmark::OrderCustomerKey(1, 2, 56, 0));
}

}  // namespace
}  // namespace imoltp::engine
