#include "mcsim/cache.h"

#include <gtest/gtest.h>

#include <vector>

namespace imoltp::mcsim {
namespace {

CacheConfig Small(uint32_t size, uint32_t assoc) {
  return CacheConfig{size, 64, assoc};
}

TEST(CacheTest, FirstAccessMissesSecondHits) {
  Cache c(Small(4096, 4));
  EXPECT_FALSE(c.Access(100));
  EXPECT_TRUE(c.Access(100));
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 1u);
}

TEST(CacheTest, LineZeroIsCacheable) {
  Cache c(Small(4096, 4));
  EXPECT_FALSE(c.Access(0));
  EXPECT_TRUE(c.Access(0));
  EXPECT_TRUE(c.Contains(0));
}

TEST(CacheTest, DistinctLinesDoNotAlias) {
  Cache c(Small(4096, 4));
  c.Access(1);
  EXPECT_FALSE(c.Access(2));
  EXPECT_TRUE(c.Contains(1));
  EXPECT_TRUE(c.Contains(2));
}

TEST(CacheTest, CapacityEvictsLeastRecentlyUsed) {
  // 4 sets x 2 ways; lines with the same low bits map to one set.
  Cache c(CacheConfig{512, 64, 2});
  ASSERT_EQ(c.num_sets(), 4u);
  const uint64_t set0[] = {0, 4, 8};  // all map to set 0
  c.Access(set0[0]);
  c.Access(set0[1]);
  c.Access(set0[2]);  // evicts line 0 (LRU)
  EXPECT_FALSE(c.Contains(set0[0]));
  EXPECT_TRUE(c.Contains(set0[1]));
  EXPECT_TRUE(c.Contains(set0[2]));
}

TEST(CacheTest, AccessRefreshesLruOrder) {
  Cache c(CacheConfig{512, 64, 2});
  c.Access(0);
  c.Access(4);
  c.Access(0);  // 4 becomes LRU
  c.Access(8);  // evicts 4
  EXPECT_TRUE(c.Contains(0));
  EXPECT_FALSE(c.Contains(4));
  EXPECT_TRUE(c.Contains(8));
}

TEST(CacheTest, InvalidateRemovesLine) {
  Cache c(Small(4096, 4));
  c.Access(7);
  EXPECT_TRUE(c.Contains(7));
  c.Invalidate(7);
  EXPECT_FALSE(c.Contains(7));
  EXPECT_FALSE(c.Access(7));  // miss again
}

TEST(CacheTest, InvalidateAbsentLineIsNoop) {
  Cache c(Small(4096, 4));
  c.Access(7);
  c.Invalidate(9999);
  EXPECT_TRUE(c.Contains(7));
}

TEST(CacheTest, ResetDropsContentsAndCounters) {
  Cache c(Small(4096, 4));
  c.Access(1);
  c.Access(1);
  c.Reset();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_FALSE(c.Contains(1));
}

TEST(CacheTest, ContainsDoesNotPerturbLru) {
  Cache c(CacheConfig{512, 64, 2});
  c.Access(0);
  c.Access(4);
  // Touch 0 via Contains only; 0 must remain the LRU victim.
  EXPECT_TRUE(c.Contains(0));
  c.Access(8);
  EXPECT_FALSE(c.Contains(0));
}

TEST(CacheTest, HighAddressBitsDifferentiateTags) {
  Cache c(Small(4096, 4));
  const uint64_t a = 5;
  const uint64_t b = 5 | (1ULL << 40);  // same set, different tag
  c.Access(a);
  EXPECT_FALSE(c.Access(b));
  EXPECT_TRUE(c.Contains(a));
  EXPECT_TRUE(c.Contains(b));
}

// Property sweep: for any geometry, a working set no larger than the
// cache must fully hit on the second pass, and a working set twice the
// capacity cycled sequentially must keep missing (LRU worst case).
struct Geometry {
  uint32_t size_bytes;
  uint32_t assoc;
};

class CacheGeometryTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheGeometryTest, ResidentWorkingSetHitsOnSecondPass) {
  const Geometry g = GetParam();
  Cache c(CacheConfig{g.size_bytes, 64, g.assoc});
  const uint64_t lines = g.size_bytes / 64;
  for (uint64_t i = 0; i < lines; ++i) c.Access(i);
  const uint64_t misses_before = c.misses();
  for (uint64_t i = 0; i < lines; ++i) {
    EXPECT_TRUE(c.Access(i)) << "line " << i;
  }
  EXPECT_EQ(c.misses(), misses_before);
}

TEST_P(CacheGeometryTest, OversizedCyclicSweepKeepsMissing) {
  const Geometry g = GetParam();
  Cache c(CacheConfig{g.size_bytes, 64, g.assoc});
  const uint64_t lines = 2 * g.size_bytes / 64;
  for (int pass = 0; pass < 3; ++pass) {
    for (uint64_t i = 0; i < lines; ++i) c.Access(i);
  }
  // Sequential cyclic reuse at 2x capacity defeats LRU entirely.
  EXPECT_EQ(c.hits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(Geometry{1024, 1}, Geometry{4096, 2},
                      Geometry{32 * 1024, 8}, Geometry{256 * 1024, 8},
                      Geometry{1024 * 1024, 16}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return std::to_string(info.param.size_bytes) + "b" +
             std::to_string(info.param.assoc) + "w";
    });

}  // namespace
}  // namespace imoltp::mcsim
