// Extension (paper Section 8, "Implications"): the paper argues that
// OLTP's low ILP/MLP means "instead of using beefy and complex
// out-of-order cores consuming large amounts of energy, using simpler
// cores ... would lead to higher energy-efficiency with better or
// similar performance." This bench quantifies that claim on the
// reproduced apparatus.
//
// Big core:    the Table 1 Ivy Bridge model as calibrated.
// Little core: an in-order design — higher no-miss CPI (2-wide, no
//              reordering), no overlap of data misses, shorter pipeline
//              (smaller frontend and mispredict penalties) — paired with
//              the low-power energy parameters.
//
// Memory-bound workloads barely notice the weaker core; the energy per
// transaction drops by integer factors.

#include "bench/bench_common.h"
#include "mcsim/energy.h"

using namespace imoltp;

namespace {

mcsim::MachineConfig LittleCore() {
  mcsim::MachineConfig c;
  c.issue_width = 2;
  c.cycle.base_cpi = 0.9;    // in-order, 2-wide
  c.cycle.cpi_floor = 1.0;   // no reordering: nothing dips below 1 CPI
  c.cycle.frontend_amplification = 1.5;  // short pipeline
  c.cycle.mispredict_penalty = 8.0;
  c.cycle.data_amp_l1 = 1.0;  // nothing is hidden in order
  c.cycle.data_amp_l2 = 1.0;
  c.cycle.llc_amp_floor = 1.6;
  return c;
}

struct CellResult {
  double ipc;
  double cycles_per_txn;
  double energy_uj_per_txn;
};

CellResult RunCell(engine::EngineKind kind,
                   const mcsim::MachineConfig& machine,
                   const mcsim::EnergyParams& energy) {
  core::MicroConfig mcfg;
  mcfg.nominal_bytes = 100ULL << 30;
  mcfg.max_resident_rows = 1'000'000;
  core::MicroBenchmark wl(mcfg);
  core::ExperimentConfig cfg = bench::DefaultConfig(kind);
  cfg.measure_txns = bench::ScaleTxns(3000);
  cfg.machine_config = machine;
  auto runner = bench::MakeRunner(cfg, &wl);

  const auto before = runner->machine()->core(0).counters();
  const mcsim::WindowReport r = bench::RunWindow(*runner, &wl);
  const auto delta = runner->machine()->core(0).counters() - before;

  CellResult out;
  out.ipc = r.ipc;
  out.cycles_per_txn = r.cycles_per_txn;
  const mcsim::EnergyReport e =
      mcsim::ComputeEnergy(delta, r.cycles, energy);
  out.energy_uj_per_txn = e.total_nj / 1000.0 / r.transactions;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  bench::PrintHeader(
      "Extension",
      "Energy efficiency: big OoO core vs simple core (Section 8)");
  std::printf(
      "%-10s | %6s %12s %10s | %6s %12s %10s | %9s %9s\n", "engine",
      "IPC", "cycles/txn", "uJ/txn", "IPC", "cycles/txn", "uJ/txn",
      "perf rat.", "energy x");
  std::printf("%-10s | %32s | %32s |\n", "",
              "---------- big core ----------",
              "--------- little core --------");

  const mcsim::MachineConfig big;                 // Table 1, calibrated
  const mcsim::EnergyParams big_energy;           // server-class
  const mcsim::MachineConfig little = LittleCore();
  const mcsim::EnergyParams little_energy = mcsim::LittleCoreEnergy();

  for (engine::EngineKind kind : bench::AllEngines()) {
    std::fprintf(stderr, "  running %s...\n",
                 engine::EngineKindName(kind));
    const CellResult b = RunCell(kind, big, big_energy);
    const CellResult l = RunCell(kind, little, little_energy);
    std::printf(
        "%-10s | %6.2f %12.0f %10.2f | %6.2f %12.0f %10.2f | %8.2fx "
        "%8.2fx\n",
        engine::EngineKindName(kind), b.ipc, b.cycles_per_txn,
        b.energy_uj_per_txn, l.ipc, l.cycles_per_txn,
        l.energy_uj_per_txn, b.cycles_per_txn / l.cycles_per_txn,
        b.energy_uj_per_txn / l.energy_uj_per_txn);
  }

  std::printf(
      "\nperf rat. = big-core speedup (cycles little / cycles big, <1\n"
      "means the little core is slower); energy x = how many times less\n"
      "energy the little core spends per transaction. OLTP's memory-bound\n"
      "profile keeps the slowdown small while the energy gap stays large\n"
      "— the paper's Section 8 implication, quantified.\n");
  return 0;
}
