// Figure 14: index structure x transaction compilation on DBMS M while
// running TPC-C. Compilation cuts instruction stalls under both index
// types; data stalls stay small because TPC-C needs fewer random reads
// than the micro-benchmark (Section 6.1).

#include "bench/bench_common.h"
#include "core/tpcc.h"

using namespace imoltp;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  struct Cell {
    const char* label;
    index::IndexKind index;
    bool compilation;
  };
  const Cell kCells[] = {
      {"Hash w/ compilation", index::IndexKind::kHash, true},
      {"Hash w/o compilation", index::IndexKind::kHash, false},
      {"B-tree w/ compilation", index::IndexKind::kBTreeCc, true},
      {"B-tree w/o compilation", index::IndexKind::kBTreeCc, false},
  };

  std::vector<core::ReportRow> rows;
  for (const Cell& cell : kCells) {
    std::fprintf(stderr, "  running %s...\n", cell.label);
    core::TpccConfig tcfg;
    core::TpccBenchmark wl(tcfg);
    core::ExperimentConfig cfg =
        bench::HeavyTxnConfig(engine::EngineKind::kDbmsM);
    cfg.measure_txns = bench::ScaleTxns(2500);
    // "Hash" configures the point indexes; scan-dependent tables keep an
    // ordered structure in either case (the engine promotes them).
    cfg.engine_options.dbms_m_index = cell.index;
    cfg.engine_options.compilation = cell.compilation;
    rows.push_back({cell.label, bench::RunOnce(cfg, &wl)});
  }

  bench::PrintHeader("Figure 14",
                     "DBMS M index x compilation while running TPC-C");
  core::PrintStallsPerKInstr("TPC-C standard mix", rows);

  bench::ExportRowsJson("fig14_index_compilation_tpcc",
                        "DBMS M index x compilation on TPC-C", rows);
  return 0;
}
