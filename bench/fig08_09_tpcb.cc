// Figures 8-9: TPC-B (AccountUpdate banking mix) at the 100GB scale.
//
//   Fig 8: IPC per system
//   Fig 9: stall cycles per 1000 instructions
//
// DBMS M runs its hash index for TPC-B, as in the paper (Section 3).

#include "bench/bench_common.h"
#include "core/tpcb.h"

using namespace imoltp;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  std::vector<core::ReportRow> ipc, stalls, per_txn;

  bench::ForEachEngine([&](engine::EngineKind kind) {
    core::TpcbConfig tcfg;
    tcfg.nominal_bytes = 100ULL << 30;
    tcfg.max_resident_accounts = 2'000'000;
    core::TpcbBenchmark wl(tcfg);
    const mcsim::WindowReport report =
        bench::RunOnce(bench::DefaultConfig(kind), &wl);
    const std::string label(engine::EngineKindName(kind));
    ipc.push_back({label, report});
    stalls.push_back({label, report});
    per_txn.push_back({label, report});
  });

  bench::PrintHeader("Figure 8", "TPC-B IPC (100GB)");
  core::PrintIpc("TPC-B AccountUpdate", ipc);
  bench::PrintHeader("Figure 9",
                     "TPC-B stall cycles per 1000 instructions");
  core::PrintStallsPerKInstr("TPC-B AccountUpdate", stalls);
  // Not a numbered figure: the paper notes per-transaction trends match
  // per-k-instruction for TPC-B (Section 5.1.2); print for completeness.
  core::PrintStallsPerTxn("TPC-B AccountUpdate (supporting)", per_txn);

  bench::ExportRowsJson("fig08_09_tpcb", "TPC-B (100GB)", ipc);
  return 0;
}
