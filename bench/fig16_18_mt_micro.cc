// Figures 16 and 18: the multi-threaded micro-benchmark (read-only,
// 1 row, 100GB). Four workers per system; VoltDB gets four single-site
// partitions. HyPer is omitted as in the paper (its demo version only
// supports single-threaded execution, Section 3).
//
//   Fig 16: IPC
//   Fig 18: stall cycles per 1000 instructions

#include "bench/bench_common.h"

using namespace imoltp;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  const engine::EngineKind kEngines[] = {
      engine::EngineKind::kShoreMt, engine::EngineKind::kDbmsD,
      engine::EngineKind::kVoltDb, engine::EngineKind::kDbmsM};
  constexpr int kWorkers = 4;

  std::vector<core::ReportRow> rows;
  for (engine::EngineKind kind : kEngines) {
    std::fprintf(stderr, "  running %s x%d workers...\n",
                 engine::EngineKindName(kind), kWorkers);
    core::MicroConfig mcfg;
    mcfg.nominal_bytes = 100ULL << 30;
    mcfg.max_resident_rows = 2'000'000;
    mcfg.num_partitions = kWorkers;
    core::MicroBenchmark wl(mcfg);
    core::ExperimentConfig cfg = bench::DefaultConfig(kind);
    cfg.num_workers = kWorkers;
    cfg.measure_txns = bench::ScaleTxns(3000);  // per worker
    rows.push_back(
        {engine::EngineKindName(kind), bench::RunOnce(cfg, &wl)});
  }

  bench::PrintHeader("Figure 16",
                     "Multi-threaded micro-benchmark IPC (4 workers)");
  core::PrintIpc("Read-only, 1 row, 100GB", rows);
  bench::PrintHeader(
      "Figure 18",
      "Multi-threaded micro-benchmark stalls per k-instruction");
  core::PrintStallsPerKInstr("Read-only, 1 row, 100GB", rows);

  bench::ExportRowsJson("fig16_18_mt_micro",
                        "Multi-threaded micro-benchmark (4 workers)",
                        rows);
  return 0;
}
