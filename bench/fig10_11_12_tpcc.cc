// Figures 10-12: TPC-C (full five-transaction mix) at the 100GB scale.
//
//   Fig 10: IPC per system
//   Fig 11: stall cycles per 1000 instructions
//   Fig 12: stall cycles per transaction
//
// DBMS M runs its cache-conscious B-tree for TPC-C, as in the paper
// (Section 3: hash for micro/TPC-B, B-tree for TPC-C).

#include "bench/bench_common.h"
#include "core/tpcc.h"

using namespace imoltp;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  std::vector<core::ReportRow> ipc, stalls, per_txn;

  bench::ForEachEngine([&](engine::EngineKind kind) {
    core::TpccConfig tcfg;  // 8 warehouses, spread to full-scale density
    core::TpccBenchmark wl(tcfg);
    core::ExperimentConfig cfg = bench::HeavyTxnConfig(kind);
    cfg.measure_txns = bench::ScaleTxns(2500);
    cfg.engine_options.dbms_m_index = index::IndexKind::kBTreeCc;
    const mcsim::WindowReport report = bench::RunOnce(cfg, &wl);
    const std::string label(engine::EngineKindName(kind));
    ipc.push_back({label, report});
    stalls.push_back({label, report});
    per_txn.push_back({label, report});
  });

  bench::PrintHeader("Figure 10", "TPC-C IPC (100GB-scale)");
  core::PrintIpc("TPC-C standard mix", ipc);
  bench::PrintHeader("Figure 11",
                     "TPC-C stall cycles per 1000 instructions");
  core::PrintStallsPerKInstr("TPC-C standard mix", stalls);
  bench::PrintHeader("Figure 12", "TPC-C stall cycles per transaction");
  core::PrintStallsPerTxn("TPC-C standard mix", per_txn);

  bench::ExportRowsJson("fig10_11_12_tpcc", "TPC-C (100GB-scale)", ipc);
  return 0;
}
