// Ablation: cycle-model sensitivity. The reproduction's conclusions must
// not hinge on the calibrated effective-cost constants (DESIGN.md,
// "Cycle model"). The cycle model is pure post-processing over simulated
// event counts, so each engine/size cell is SIMULATED ONCE at full scale
// and its IPC re-evaluated under every parameter combination.
//
// Checked orderings (the paper's sharpest claims):
//   (a) HyPer reaches ~2x everyone's IPC when data fits in the LLC;
//   (b) HyPer has the lowest IPC at 100GB (data-bound collapse).
//
// Reported stall breakdowns (misses x Table 1 penalty) are untouched by
// these constants; only the IPC denominator moves.

#include "bench/bench_common.h"
#include "mcsim/counters.h"

using namespace imoltp;

namespace {

struct Cell {
  engine::EngineKind kind;
  bool huge;
  mcsim::WindowReport report;
};

double RecomputeIpc(const mcsim::WindowReport& r,
                    const mcsim::CycleModelParams& p) {
  // Reconstruct a per-worker-average counter set from the report.
  mcsim::ModuleCounters c;
  const double workers = r.num_workers;
  c.instructions = static_cast<uint64_t>(r.instructions * workers);
  c.base_cycles = r.base_cycles * workers;
  c.mispredictions = static_cast<uint64_t>(r.mispredictions * workers);
  c.tlb_misses = static_cast<uint64_t>(r.tlb_misses * workers);
  c.misses = r.misses;
  const double cycles = mcsim::SimulatedCycles(c, p) / workers;
  return cycles > 0 ? r.instructions / cycles : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  // Simulate every cell once.
  std::vector<Cell> cells;
  for (engine::EngineKind kind : bench::AllEngines()) {
    for (bool huge : {false, true}) {
      std::fprintf(stderr, "  simulating %s %s...\n",
                   engine::EngineKindName(kind),
                   huge ? "100GB" : "8MB");
      core::MicroConfig mcfg;
      mcfg.nominal_bytes = huge ? (100ULL << 30) : (8ULL << 20);
      mcfg.max_resident_rows = 1'000'000;
      core::MicroBenchmark wl(mcfg);
      core::ExperimentConfig cfg = bench::DefaultConfig(kind);
      cfg.measure_txns = bench::ScaleTxns(4000);
      cells.push_back({kind, huge, bench::RunOnce(cfg, &wl)});
    }
  }

  bench::PrintHeader("Ablation", "Cycle-model sensitivity sweep");
  std::printf("%8s %8s %8s | %12s %12s | %12s %12s | %s\n", "llc_amp",
              "floor", "fe_amp", "HyPer@8MB", "max other", "HyPer@100GB",
              "min other", "orderings hold?");

  for (double llc_amp : {2.5, 3.5, 4.5, 6.0, 8.0}) {
    for (double floor : {1.0, 1.3, 1.8}) {
      for (double fe_amp : {2.0, 3.0, 4.0}) {
        mcsim::CycleModelParams p;
        p.data_amp_llc = llc_amp;
        p.llc_amp_floor = floor;
        p.frontend_amplification = fe_amp;
        double hyper_small = 0, hyper_huge = 0;
        double max_other_small = 0, min_other_huge = 100;
        for (const Cell& cell : cells) {
          const double ipc = RecomputeIpc(cell.report, p);
          if (cell.kind == engine::EngineKind::kHyPer) {
            (cell.huge ? hyper_huge : hyper_small) = ipc;
          } else if (cell.huge) {
            if (ipc < min_other_huge) min_other_huge = ipc;
          } else {
            if (ipc > max_other_small) max_other_small = ipc;
          }
        }
        const bool small_ok = hyper_small > 1.4 * max_other_small;
        const bool huge_ok = hyper_huge < min_other_huge;
        std::printf(
            "%8.1f %8.1f %8.1f | %12.2f %12.2f | %12.2f %12.2f | "
            "%s%s\n",
            llc_amp, floor, fe_amp, hyper_small, max_other_small,
            hyper_huge, min_other_huge,
            small_ok ? "small:yes " : "small:NO ",
            huge_ok ? "huge:yes" : "huge:NO");
      }
    }
  }
  std::printf(
      "\nThe cached-data advantage (a) is insensitive to every constant.\n"
      "The 100GB collapse (b) needs dense LLC misses to cost meaningfully\n"
      "more than their raw penalty (llc_amp above ~3.5); given that, it\n"
      "holds across the frontend-amplification and floor ranges. The\n"
      "constants scale the contrast; the crossover itself is structural.\n");
  return 0;
}
