// Figures 1-3 (and their read-write appendix twins, Figures 20-22):
// the micro-benchmark's sensitivity to database size.
//
//   Fig 1 / 20: IPC vs database size (read-only / read-write)
//   Fig 2 / 21: stall cycles per 1000 instructions vs database size
//   Fig 3 / 22: stall cycles per transaction at 100GB
//
// One transaction reads (or updates) one random row after an index
// probe. Each engine populates each database size once; the read-only
// and read-write variants run as two measurement windows on the same
// populated database, mirroring the paper's methodology.

#include "bench/bench_common.h"

using namespace imoltp;
using bench::DbSizePoint;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  std::vector<core::ReportRow> ipc_ro, ipc_rw;
  std::vector<core::ReportRow> stalls_ro, stalls_rw;
  std::vector<core::ReportRow> per_txn_ro, per_txn_rw;

  bench::ForEachEngine([&](engine::EngineKind kind) {
    for (const DbSizePoint& size : bench::DbSizes()) {
      core::MicroConfig ro_cfg;
      ro_cfg.nominal_bytes = size.nominal_bytes;
      ro_cfg.max_resident_rows = size.max_resident_rows;
      core::MicroBenchmark ro(ro_cfg);

      core::MicroConfig rw_cfg = ro_cfg;
      rw_cfg.read_write = true;
      core::MicroBenchmark rw(rw_cfg);

      auto runner = bench::MakeRunner(bench::DefaultConfig(kind), &ro);
      const std::string label = bench::Label(kind, size.label);
      std::fprintf(stderr, "    %s...\n", size.label);

      const mcsim::WindowReport ro_report = bench::RunWindow(*runner, &ro);
      ipc_ro.push_back({label, ro_report});
      stalls_ro.push_back({label, ro_report});
      if (std::string(size.label) == "100GB") {
        per_txn_ro.push_back({label, ro_report});
      }

      const mcsim::WindowReport rw_report = bench::RunWindow(*runner, &rw);
      ipc_rw.push_back({label, rw_report});
      stalls_rw.push_back({label, rw_report});
      if (std::string(size.label) == "100GB") {
        per_txn_rw.push_back({label, rw_report});
      }
    }
  });

  bench::PrintHeader("Figure 1", "IPC vs database size (read-only)");
  core::PrintIpc("Read-only micro-benchmark, 1 row/txn", ipc_ro);
  bench::PrintHeader("Figure 2",
                     "Stall cycles per k-instruction (read-only)");
  core::PrintStallsPerKInstr("Read-only micro-benchmark", stalls_ro);
  bench::PrintHeader("Figure 3",
                     "Stall cycles per transaction, 100GB (read-only)");
  core::PrintStallsPerTxn("Read-only micro-benchmark, 100GB", per_txn_ro);

  bench::PrintHeader("Figure 20 (appendix)",
                     "IPC vs database size (read-write)");
  core::PrintIpc("Read-write micro-benchmark, 1 row/txn", ipc_rw);
  bench::PrintHeader("Figure 21 (appendix)",
                     "Stall cycles per k-instruction (read-write)");
  core::PrintStallsPerKInstr("Read-write micro-benchmark", stalls_rw);
  bench::PrintHeader("Figure 22 (appendix)",
                     "Stall cycles per transaction, 100GB (read-write)");
  core::PrintStallsPerTxn("Read-write micro-benchmark, 100GB",
                          per_txn_rw);

  // Each exported row's window embeds the stall breakdowns, so the IPC
  // vectors alone carry everything the figures plot.
  bench::ExportRowsJson("fig01_02_03_dbsize_ro",
                        "Micro-benchmark vs database size (read-only)",
                        ipc_ro);
  bench::ExportRowsJson("fig01_02_03_dbsize_rw",
                        "Micro-benchmark vs database size (read-write)",
                        ipc_rw);
  return 0;
}
