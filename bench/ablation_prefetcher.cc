// Ablation: the L2 stream prefetcher (off in the calibrated baseline,
// whose effective penalties fold production prefetching in). Explicitly
// modeling it shows WHERE prefetching helps OLTP: scan-heavy TPC-C
// transactions gain; random-probe micro-benchmarks gain almost nothing —
// one reason the paper's Section 8 calls for caching mechanisms tailored
// to OLTP's access patterns rather than generic beefy cores.
//
// Record-once / replay-many: each workload runs the engine exactly once
// (prefetcher off, recording its reference stream), then both cells come
// from replays of that trace. The pf-off replay doubles as a determinism
// gate — its counters must be bit-identical to the live run, or the
// whole ablation is untrustworthy and the binary exits non-zero.

#include <cstdio>
#include <string>
#include <unistd.h>

#include "bench/bench_common.h"
#include "core/tpcc.h"
#include "trace/record.h"
#include "trace/replay.h"

using namespace imoltp;

namespace {

struct CellResult {
  double llc_d_per_kinstr;
  double ipc;
  uint64_t prefetches;
};

std::string TracePath(const char* tag) {
  const char* dir = std::getenv("TMPDIR");
  if (dir == nullptr || *dir == '\0') dir = "/tmp";
  return std::string(dir) + "/imoltp_ablation_pf_" +
         std::to_string(getpid()) + "_" + tag + ".trace";
}

CellResult FromWindow(const mcsim::WindowReport& r, uint64_t prefetches) {
  return {r.stalls_per_kinstr.stalls[5], r.ipc, prefetches};
}

/// Records one pf-off live run, verifies a same-config replay reproduces
/// it bit-for-bit, then replays with the prefetcher enabled. Aborts the
/// process if anything (recording, replay, determinism) fails.
void RunPair(const char* tag, const core::ExperimentConfig& cfg,
             core::Workload* wl, uint64_t db_bytes, CellResult* off,
             CellResult* on) {
  const std::string path = TracePath(tag);
  trace::RecordResult live;
  Status s = trace::RecordExperiment(cfg, wl, path, db_bytes, 0, 0, &live);
  if (!s.ok()) {
    std::fprintf(stderr, "record(%s): %s\n", tag, s.ToString().c_str());
    std::exit(1);
  }

  trace::ReplayResult replay_off;
  s = trace::ReplayTraceRecorded(path, &replay_off);
  if (!s.ok()) {
    std::fprintf(stderr, "replay(%s): %s\n", tag, s.ToString().c_str());
    std::exit(1);
  }
  for (size_t c = 0; c < live.counters.size(); ++c) {
    if (!trace::CountersIdentical(live.counters[c],
                                  replay_off.counters[c])) {
      std::fprintf(stderr,
                   "determinism violation (%s, core %zu): replayed "
                   "counters differ from the live run\n",
                   tag, c);
      std::exit(1);
    }
  }

  mcsim::MachineConfig pf_on = cfg.machine_config;
  pf_on.model_prefetcher = true;
  trace::ReplayResult replay_on;
  s = trace::ReplayTrace(path, pf_on, &replay_on);
  if (!s.ok()) {
    std::fprintf(stderr, "replay-pf(%s): %s\n", tag, s.ToString().c_str());
    std::exit(1);
  }

  std::remove(path.c_str());
  *off = FromWindow(replay_off.window, replay_off.prefetches[0]);
  *on = FromWindow(replay_on.window, replay_on.prefetches[0]);
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation",
                     "L2 stream prefetcher: scans vs random probes");
  std::printf("%-26s %14s %8s %12s\n", "workload (VoltDB)", "LLC-D/kI",
              "IPC", "prefetches");

  std::fprintf(stderr, "  micro: record once, replay pf off/on...\n");
  core::MicroConfig mcfg;
  mcfg.nominal_bytes = 100ULL << 30;
  mcfg.max_resident_rows = 1'000'000;
  core::MicroBenchmark micro(mcfg);
  core::ExperimentConfig micro_cfg =
      bench::DefaultConfig(engine::EngineKind::kVoltDb);
  micro_cfg.machine_config.model_prefetcher = false;
  CellResult micro_off, micro_on;
  RunPair("micro", micro_cfg, &micro, mcfg.nominal_bytes, &micro_off,
          &micro_on);

  std::fprintf(stderr, "  tpcc: record once, replay pf off/on...\n");
  core::TpccConfig tcfg;
  core::TpccBenchmark tpcc(tcfg);
  core::ExperimentConfig tpcc_cfg =
      bench::HeavyTxnConfig(engine::EngineKind::kVoltDb);
  tpcc_cfg.measure_txns = 2000;
  tpcc_cfg.machine_config.model_prefetcher = false;
  CellResult tpcc_off, tpcc_on;
  RunPair("tpcc", tpcc_cfg, &tpcc, 0, &tpcc_off, &tpcc_on);

  std::printf("%-26s %14.1f %8.2f %12s\n", "micro 100GB, pf off",
              micro_off.llc_d_per_kinstr, micro_off.ipc, "-");
  std::printf("%-26s %14.1f %8.2f %12llu\n", "micro 100GB, pf on",
              micro_on.llc_d_per_kinstr, micro_on.ipc,
              static_cast<unsigned long long>(micro_on.prefetches));
  std::printf("%-26s %14.1f %8.2f %12s\n", "TPC-C, pf off",
              tpcc_off.llc_d_per_kinstr, tpcc_off.ipc, "-");
  std::printf("%-26s %14.1f %8.2f %12llu\n", "TPC-C, pf on",
              tpcc_on.llc_d_per_kinstr, tpcc_on.ipc,
              static_cast<unsigned long long>(tpcc_on.prefetches));

  std::printf(
      "\nTPC-C's index scans and sequential inserts feed the streamer;\n"
      "the micro-benchmark's dependent random probes give it nothing to\n"
      "predict. Generic prefetching cannot fix OLTP's data stalls.\n"
      "(Both rows per workload replay one recorded reference stream;\n"
      "the pf-off replay is checked bit-identical to the live run.)\n");
  return 0;
}
