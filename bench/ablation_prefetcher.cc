// Ablation: the L2 stream prefetcher (off in the calibrated baseline,
// whose effective penalties fold production prefetching in). Explicitly
// modeling it shows WHERE prefetching helps OLTP: scan-heavy TPC-C
// transactions gain; random-probe micro-benchmarks gain almost nothing —
// one reason the paper's Section 8 calls for caching mechanisms tailored
// to OLTP's access patterns rather than generic beefy cores.

#include "bench/bench_common.h"
#include "core/tpcc.h"

using namespace imoltp;

namespace {

struct CellResult {
  double llc_d_per_kinstr;
  double ipc;
  uint64_t prefetches;
};

CellResult RunMicroCell(bool prefetch) {
  core::MicroConfig mcfg;
  mcfg.nominal_bytes = 100ULL << 30;
  mcfg.max_resident_rows = 1'000'000;
  core::MicroBenchmark wl(mcfg);
  core::ExperimentConfig cfg =
      bench::DefaultConfig(engine::EngineKind::kVoltDb);
  cfg.machine_config.model_prefetcher = prefetch;
  core::ExperimentRunner runner(cfg, &wl);
  const auto r = runner.Run(&wl);
  return {r.stalls_per_kinstr.stalls[5], r.ipc,
          runner.machine()->core(0).prefetches_issued()};
}

CellResult RunTpccCell(bool prefetch) {
  core::TpccConfig tcfg;
  core::TpccBenchmark wl(tcfg);
  core::ExperimentConfig cfg =
      bench::HeavyTxnConfig(engine::EngineKind::kVoltDb);
  cfg.measure_txns = 2000;
  cfg.machine_config.model_prefetcher = prefetch;
  core::ExperimentRunner runner(cfg, &wl);
  const auto r = runner.Run(&wl);
  return {r.stalls_per_kinstr.stalls[5], r.ipc,
          runner.machine()->core(0).prefetches_issued()};
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation",
                     "L2 stream prefetcher: scans vs random probes");
  std::printf("%-26s %14s %8s %12s\n", "workload (VoltDB)", "LLC-D/kI",
              "IPC", "prefetches");

  std::fprintf(stderr, "  micro, prefetcher off...\n");
  const CellResult micro_off = RunMicroCell(false);
  std::fprintf(stderr, "  micro, prefetcher on...\n");
  const CellResult micro_on = RunMicroCell(true);
  std::fprintf(stderr, "  tpcc, prefetcher off...\n");
  const CellResult tpcc_off = RunTpccCell(false);
  std::fprintf(stderr, "  tpcc, prefetcher on...\n");
  const CellResult tpcc_on = RunTpccCell(true);

  std::printf("%-26s %14.1f %8.2f %12s\n", "micro 100GB, pf off",
              micro_off.llc_d_per_kinstr, micro_off.ipc, "-");
  std::printf("%-26s %14.1f %8.2f %12llu\n", "micro 100GB, pf on",
              micro_on.llc_d_per_kinstr, micro_on.ipc,
              static_cast<unsigned long long>(micro_on.prefetches));
  std::printf("%-26s %14.1f %8.2f %12s\n", "TPC-C, pf off",
              tpcc_off.llc_d_per_kinstr, tpcc_off.ipc, "-");
  std::printf("%-26s %14.1f %8.2f %12llu\n", "TPC-C, pf on",
              tpcc_on.llc_d_per_kinstr, tpcc_on.ipc,
              static_cast<unsigned long long>(tpcc_on.prefetches));

  std::printf(
      "\nTPC-C's index scans and sequential inserts feed the streamer;\n"
      "the micro-benchmark's dependent random probes give it nothing to\n"
      "predict. Generic prefetching cannot fix OLTP's data stalls.\n");
  return 0;
}
