// Ablation: where does index cache-consciousness pay? Sweeps the B-tree
// node size from cache-line-scale to disk-page-scale over a large key
// set and reports the simulated memory behavior of random probes —
// the design-space behind Shore-MT's 8KB nodes vs VoltDB's 512B nodes
// vs DBMS M's KB-scale pages (paper Sections 4.1.3 and 6.1).

#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "index/btree.h"
#include "mcsim/machine.h"

using namespace imoltp;

int main() {
  constexpr uint64_t kKeys = 2'000'000;
  constexpr int kProbes = 50000;
  const uint32_t kNodeSizes[] = {256, 512, 1024, 2048, 4096, 8192};

  std::printf("B-tree node-size sweep: %llu keys, %d random probes\n",
              static_cast<unsigned long long>(kKeys), kProbes);
  std::printf("%8s %7s %12s %14s %14s %12s\n", "node", "height",
              "lines/probe", "LLCmiss/probe", "L1Dmiss/probe",
              "instr/probe");

  for (uint32_t node_bytes : kNodeSizes) {
    mcsim::MachineSim machine;  // Table 1 geometry, TLB on
    mcsim::CoreSim& core = machine.core(0);
    index::BTree tree(node_bytes, 8, index::IndexKind::kBTreeCc);

    core.set_enabled(false);  // bulk build untraced
    for (uint64_t i = 0; i < kKeys; ++i) {
      tree.Insert(&core, index::Key::FromUint64(i), i);
    }
    core.set_enabled(true);

    // Warm pass over all keys (steady-state cache contents).
    Rng warm_rng(1);
    uint64_t v;
    for (uint64_t i = 0; i < kKeys; i += 3) {
      tree.Lookup(&core, index::Key::FromUint64(i), &v);
    }

    const auto before = core.counters();
    Rng rng(2);
    for (int i = 0; i < kProbes; ++i) {
      tree.Lookup(&core, index::Key::FromUint64(rng.Uniform(kKeys)), &v);
    }
    const auto delta = core.counters() - before;
    std::printf("%7uB %7u %12.1f %14.2f %14.2f %12.0f\n", node_bytes,
                tree.height(),
                static_cast<double>(delta.data_accesses) / kProbes,
                static_cast<double>(delta.misses.llc_d) / kProbes,
                static_cast<double>(delta.misses.l1d) / kProbes,
                static_cast<double>(delta.instructions) / kProbes);
  }
  std::printf(
      "\nTwo forces trade off: small nodes deepen the tree (more\n"
      "uncached levels per probe once the index outgrows the LLC), while\n"
      "disk-page nodes spend extra lines searching inside each node. At\n"
      "this scale the LLC-miss minimum sits at KB-scale nodes — the\n"
      "Bw-tree/solidDB-style pages the paper's DBMS M uses — while 8KB\n"
      "disk pages pay again inside the node, as Shore-MT/DBMS D do.\n");
  return 0;
}
