// Figures 17 and 19: multi-threaded TPC-C. Four workers per system
// (VoltDB: four partitions, warehouses divided among them); HyPer
// omitted as in the paper.
//
//   Fig 17: IPC
//   Fig 19: stall cycles per 1000 instructions

#include "bench/bench_common.h"
#include "core/tpcc.h"

using namespace imoltp;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  const engine::EngineKind kEngines[] = {
      engine::EngineKind::kShoreMt, engine::EngineKind::kDbmsD,
      engine::EngineKind::kVoltDb, engine::EngineKind::kDbmsM};
  constexpr int kWorkers = 4;

  std::vector<core::ReportRow> rows;
  for (engine::EngineKind kind : kEngines) {
    std::fprintf(stderr, "  running %s x%d workers...\n",
                 engine::EngineKindName(kind), kWorkers);
    core::TpccConfig tcfg;
    tcfg.num_partitions = kWorkers;  // 8 warehouses over 4 partitions
    core::TpccBenchmark wl(tcfg);
    core::ExperimentConfig cfg = bench::HeavyTxnConfig(kind);
    cfg.num_workers = kWorkers;
    cfg.measure_txns = bench::ScaleTxns(1200);  // per worker
    cfg.engine_options.dbms_m_index = index::IndexKind::kBTreeCc;
    rows.push_back(
        {engine::EngineKindName(kind), bench::RunOnce(cfg, &wl)});
  }

  bench::PrintHeader("Figure 17", "Multi-threaded TPC-C IPC (4 workers)");
  core::PrintIpc("TPC-C standard mix", rows);
  bench::PrintHeader("Figure 19",
                     "Multi-threaded TPC-C stalls per k-instruction");
  core::PrintStallsPerKInstr("TPC-C standard mix", rows);

  bench::ExportRowsJson("fig17_19_mt_tpcc",
                        "Multi-threaded TPC-C (4 workers)", rows);
  return 0;
}
