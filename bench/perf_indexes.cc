// Library micro-benchmarks (google-benchmark): throughput of the index
// structures with tracing attached, across the paper's index archetypes.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "index/index.h"
#include "mcsim/machine.h"

namespace imoltp::index {
namespace {

IndexKind KindOf(int64_t arg) {
  switch (arg) {
    case 0: return IndexKind::kBTree8K;
    case 1: return IndexKind::kBTreeCacheline;
    case 2: return IndexKind::kBTreeCc;
    case 3: return IndexKind::kArt;
    default: return IndexKind::kHash;
  }
}

void BM_IndexInsert(benchmark::State& state) {
  mcsim::MachineSim machine;
  auto index = CreateIndex(KindOf(state.range(0)), 8);
  uint64_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index->Insert(&machine.core(0), Key::FromUint64(next++), next));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(IndexKindName(KindOf(state.range(0))));
}
BENCHMARK(BM_IndexInsert)->DenseRange(0, 4);

void BM_IndexLookup(benchmark::State& state) {
  mcsim::MachineSim machine;
  auto index = CreateIndex(KindOf(state.range(0)), 8);
  constexpr uint64_t kKeys = 1 << 20;
  machine.core(0).set_enabled(false);
  for (uint64_t i = 0; i < kKeys; ++i) {
    index->Insert(&machine.core(0), Key::FromUint64(i), i);
  }
  machine.core(0).set_enabled(true);
  Rng rng(1);
  uint64_t v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index->Lookup(
        &machine.core(0), Key::FromUint64(rng.Uniform(kKeys)), &v));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(IndexKindName(KindOf(state.range(0))));
}
BENCHMARK(BM_IndexLookup)->DenseRange(0, 4);

void BM_IndexScan100(benchmark::State& state) {
  mcsim::MachineSim machine;
  auto index = CreateIndex(KindOf(state.range(0)), 8);
  if (!index->ordered()) {
    state.SkipWithError("unordered index");
    return;
  }
  constexpr uint64_t kKeys = 1 << 18;
  machine.core(0).set_enabled(false);
  for (uint64_t i = 0; i < kKeys; ++i) {
    index->Insert(&machine.core(0), Key::FromUint64(i), i);
  }
  machine.core(0).set_enabled(true);
  Rng rng(1);
  std::vector<uint64_t> out;
  for (auto _ : state) {
    out.clear();
    index->Scan(&machine.core(0),
                Key::FromUint64(rng.Uniform(kKeys - 128)), 100, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * 100);
  state.SetLabel(IndexKindName(KindOf(state.range(0))));
}
BENCHMARK(BM_IndexScan100)->DenseRange(0, 3);

}  // namespace
}  // namespace imoltp::index

BENCHMARK_MAIN();
