// Ablation (paper Section 7, side note): VoltDB's single-site
// optimization. When every transaction is guaranteed to touch a single
// partition, VoltDB skips distributed-transaction coordination; without
// the guarantee the paper observes instruction stalls growing by ~60%.

#include "bench/bench_common.h"

using namespace imoltp;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  std::vector<core::ReportRow> rows;
  double instr_stalls[2] = {0, 0};

  for (bool single_site : {true, false}) {
    std::fprintf(stderr, "  running single_site=%d...\n", single_site);
    core::MicroConfig mcfg;
    mcfg.nominal_bytes = 100ULL << 30;
    mcfg.max_resident_rows = 2'000'000;
    core::MicroBenchmark wl(mcfg);
    core::ExperimentConfig cfg =
        bench::DefaultConfig(engine::EngineKind::kVoltDb);
    cfg.engine_options.single_site = single_site;
    const mcsim::WindowReport report = bench::RunOnce(cfg, &wl);
    rows.push_back(
        {single_site ? "VoltDB single-site" : "VoltDB multi-site path",
         report});
    instr_stalls[single_site ? 0 : 1] =
        report.stalls_per_kinstr.instruction_total();
  }

  bench::PrintHeader("Ablation",
                     "VoltDB single-site guarantee (Section 7 note)");
  core::PrintIpc("Read-only micro, 1 row, 100GB", rows);
  core::PrintStallsPerKInstr("Read-only micro, 1 row, 100GB", rows);
  std::printf(
      "\nInstruction stalls/k-instr grow by %.0f%% without the "
      "single-site guarantee (paper: ~60%%).\n",
      100.0 * (instr_stalls[1] - instr_stalls[0]) / instr_stalls[0]);

  bench::ExportRowsJson("ablation_voltdb_singlesite",
                        "VoltDB single-site guarantee ablation", rows);
  return 0;
}
