// Table 1: the simulated server parameters — the exact geometry of the
// paper's Intel Xeon E5-2640 v2 (Ivy Bridge) testbed, plus the cycle
// model constants this reproduction layers on top (see DESIGN.md).

#include <cstdio>

#include "common/format.h"
#include "mcsim/config.h"

int main() {
  using imoltp::FormatBytes;
  const imoltp::mcsim::MachineConfig c;

  std::printf("Table 1: Server Parameters (simulated)\n");
  std::printf("---------------------------------------------------\n");
  std::printf("%-28s %s\n", "Processor",
              "Intel Xeon E5-2640 v2 (Ivy Bridge), simulated");
  std::printf("%-28s %d\n", "#Simulated cores (default)", c.num_cores);
  std::printf("%-28s %d-wide\n", "Issue width", c.issue_width);
  std::printf("%-28s %.2fGHz\n", "Clock speed", c.clock_ghz);
  std::printf("%-28s %s / %s, %u-way, %.0f-cycle miss\n", "L1I / L1D",
              FormatBytes(c.l1i.size_bytes).c_str(),
              FormatBytes(c.l1d.size_bytes).c_str(), c.l1i.associativity,
              c.cycle.l1_miss_penalty);
  std::printf("%-28s %s, %u-way, %.0f-cycle miss\n", "L2 (per core)",
              FormatBytes(c.l2.size_bytes).c_str(), c.l2.associativity,
              c.cycle.l2_miss_penalty);
  std::printf("%-28s %s, %u-way, %.0f-cycle miss\n", "LLC (shared)",
              FormatBytes(c.llc.size_bytes).c_str(), c.llc.associativity,
              c.cycle.llc_miss_penalty);
  std::printf("%-28s %s lines, %u pages + %u STLB entries\n", "dTLB",
              c.model_tlb ? "modeled" : "off",
              static_cast<unsigned>(c.dtlb.size_bytes / 64),
              static_cast<unsigned>(c.stlb.size_bytes / 64));

  std::printf("\nCycle model (see DESIGN.md)\n");
  std::printf("---------------------------------------------------\n");
  std::printf("%-28s %.3f\n", "Base CPI (substrate code)",
              c.cycle.base_cpi);
  std::printf("%-28s %.2fx\n", "Frontend miss amplification",
              c.cycle.frontend_amplification);
  std::printf("%-28s %.2f / %.2f / %.2f\n",
              "Data miss multipliers L1/L2/LLC", c.cycle.data_amp_l1,
              c.cycle.data_amp_l2, c.cycle.data_amp_llc);
  std::printf("%-28s %.0f cycles\n", "Branch mispredict penalty",
              c.cycle.mispredict_penalty);
  std::printf("%-28s %.0f cycles + PTE load\n", "dTLB walk",
              c.cycle.tlb_walk_cycles);
  return 0;
}
