#ifndef IMOLTP_BENCH_BENCH_COMMON_H_
#define IMOLTP_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/microbench.h"
#include "core/report.h"
#include "obs/report_json.h"

namespace imoltp::bench {

/// All five analyzed systems, in the paper's figure order.
inline const std::vector<engine::EngineKind>& AllEngines() {
  static const std::vector<engine::EngineKind> kEngines = {
      engine::EngineKind::kShoreMt, engine::EngineKind::kDbmsD,
      engine::EngineKind::kVoltDb, engine::EngineKind::kHyPer,
      engine::EngineKind::kDbmsM};
  return kEngines;
}

/// The paper's database-size x-axis. The 10GB/100GB points use sparse
/// address-space tables (DESIGN.md, Substitutions); their resident-row
/// caps keep populate time reasonable while the working set stays far
/// beyond the 20MB LLC.
struct DbSizePoint {
  const char* label;
  uint64_t nominal_bytes;
  uint64_t max_resident_rows;
};

inline const std::vector<DbSizePoint>& DbSizes() {
  static const std::vector<DbSizePoint> kSizes = {
      {"1MB", 1ULL << 20, 2'000'000},
      {"10MB", 10ULL << 20, 2'000'000},
      {"10GB", 10ULL << 30, 1'000'000},
      {"100GB", 100ULL << 30, 2'000'000},
  };
  return kSizes;
}

/// Process-wide knobs shared by every figure binary, set once by
/// ParseBenchArgs in main(). Figures default to kDeterministic so the
/// exported JSON is reproducible run to run (and diffable with
/// imoltp_diff); pass --mode=free for wall-clock speed when the exact
/// counters don't matter.
struct BenchOptions {
  core::ParallelMode mode = core::ParallelMode::kDeterministic;
  double txn_scale = 1.0;
};

inline BenchOptions& Options() {
  static BenchOptions options;
  return options;
}

/// Shared figure-binary flag parsing: --mode=serial|deterministic|free
/// and --txn-scale=F (scales every warm-up/measurement window, for
/// quick smoke runs). Unknown flags print usage and exit.
inline void ParseBenchArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mode=", 0) == 0) {
      const std::string m = arg.substr(7);
      if (m == "serial") {
        Options().mode = core::ParallelMode::kSerial;
      } else if (m == "deterministic") {
        Options().mode = core::ParallelMode::kDeterministic;
      } else if (m == "free") {
        Options().mode = core::ParallelMode::kFree;
      } else {
        std::fprintf(stderr, "unknown --mode value: %s\n", m.c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--txn-scale=", 0) == 0) {
      Options().txn_scale = std::atof(arg.c_str() + 12);
      if (Options().txn_scale <= 0) {
        std::fprintf(stderr, "--txn-scale must be positive\n");
        std::exit(2);
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--mode=serial|deterministic|free] "
                   "[--txn-scale=F]\n",
                   argv[0]);
      std::exit(2);
    }
  }
}

inline uint64_t ScaleTxns(uint64_t txns) {
  const double scaled = static_cast<double>(txns) * Options().txn_scale;
  return scaled < 1.0 ? 1 : static_cast<uint64_t>(scaled);
}

inline core::ExperimentConfig DefaultConfig(engine::EngineKind kind) {
  core::ExperimentConfig cfg;
  cfg.engine = kind;
  cfg.parallel_mode = Options().mode;
  cfg.warmup_txns = ScaleTxns(2000);
  cfg.measure_txns = ScaleTxns(6000);
  return cfg;
}

/// Smaller windows for heavy (100-row / TPC-C-scale) transactions.
inline core::ExperimentConfig HeavyTxnConfig(engine::EngineKind kind) {
  core::ExperimentConfig cfg = DefaultConfig(kind);
  cfg.warmup_txns = ScaleTxns(400);
  cfg.measure_txns = ScaleTxns(1500);
  return cfg;
}

/// Builds a populated runner, exiting (with the failure on stderr) if
/// database creation fails — figure binaries have no useful recovery.
inline std::unique_ptr<core::ExperimentRunner> MakeRunner(
    const core::ExperimentConfig& cfg, core::Workload* schema_source) {
  auto runner = core::ExperimentRunner::Create(cfg, schema_source);
  if (!runner.ok()) {
    std::fprintf(stderr, "ExperimentRunner::Create failed: %s\n",
                 runner.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(runner.value());
}

/// Runs one measurement window, exiting on failure.
inline mcsim::WindowReport RunWindow(core::ExperimentRunner& runner,
                                     core::Workload* workload) {
  auto report = runner.Run(workload);
  if (!report.ok()) {
    std::fprintf(stderr, "ExperimentRunner::Run failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  return *report;
}

/// One-shot populate + run, exiting on failure.
inline mcsim::WindowReport RunOnce(const core::ExperimentConfig& cfg,
                                   core::Workload* workload) {
  auto report = core::RunExperiment(cfg, workload);
  if (!report.ok()) {
    std::fprintf(stderr, "RunExperiment failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  return *report;
}

/// The standard per-figure sweep loop: one callback per engine, with
/// the progress line every figure used to hand-roll.
template <typename Fn>
inline void ForEachEngine(Fn&& fn) {
  for (engine::EngineKind kind : AllEngines()) {
    std::fprintf(stderr, "  running %s...\n",
                 engine::EngineKindName(kind));
    fn(kind);
  }
}

inline std::string Label(engine::EngineKind kind, const std::string& sub) {
  return std::string(engine::EngineKindName(kind)) + " " + sub;
}

/// When IMOLTP_JSON_DIR is set, dumps `rows` as one schema-versioned
/// JSON document to $IMOLTP_JSON_DIR/<name>.json so figure sweeps can
/// be archived and regression-diffed with imoltp_diff. No-op otherwise.
inline void ExportRowsJson(const char* name, const char* title,
                           const std::vector<core::ReportRow>& rows,
                           const mcsim::CycleModelParams& params = {}) {
  const char* dir = std::getenv("IMOLTP_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return;
  obs::JsonWriter w;
  w.BeginObject();
  w.KeyValue("schema_version", obs::kReportSchemaVersion);
  w.KeyValue("figure", name);
  w.KeyValue("title", title);
  w.Key("rows");
  w.BeginArray();
  for (const core::ReportRow& r : rows) {
    w.BeginObject();
    w.KeyValue("label", r.label);
    w.Key("window");
    obs::WindowReportToJson(w, r.report, params);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  const std::string path = std::string(dir) + "/" + name + ".json";
  const Status s = obs::WriteJsonFile(path, w.TakeString());
  if (!s.ok()) {
    std::fprintf(stderr, "ExportRowsJson: %s\n", s.ToString().c_str());
  } else {
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }
}

inline void PrintHeader(const char* figure, const char* caption) {
  std::printf("\n");
  std::printf(
      "==========================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf(
      "==========================================================\n");
}

}  // namespace imoltp::bench

#endif  // IMOLTP_BENCH_BENCH_COMMON_H_
