#ifndef IMOLTP_BENCH_BENCH_COMMON_H_
#define IMOLTP_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/microbench.h"
#include "core/report.h"
#include "obs/report_json.h"

namespace imoltp::bench {

/// All five analyzed systems, in the paper's figure order.
inline const std::vector<engine::EngineKind>& AllEngines() {
  static const std::vector<engine::EngineKind> kEngines = {
      engine::EngineKind::kShoreMt, engine::EngineKind::kDbmsD,
      engine::EngineKind::kVoltDb, engine::EngineKind::kHyPer,
      engine::EngineKind::kDbmsM};
  return kEngines;
}

/// The paper's database-size x-axis. The 10GB/100GB points use sparse
/// address-space tables (DESIGN.md, Substitutions); their resident-row
/// caps keep populate time reasonable while the working set stays far
/// beyond the 20MB LLC.
struct DbSizePoint {
  const char* label;
  uint64_t nominal_bytes;
  uint64_t max_resident_rows;
};

inline const std::vector<DbSizePoint>& DbSizes() {
  static const std::vector<DbSizePoint> kSizes = {
      {"1MB", 1ULL << 20, 2'000'000},
      {"10MB", 10ULL << 20, 2'000'000},
      {"10GB", 10ULL << 30, 1'000'000},
      {"100GB", 100ULL << 30, 2'000'000},
  };
  return kSizes;
}

inline core::ExperimentConfig DefaultConfig(engine::EngineKind kind) {
  core::ExperimentConfig cfg;
  cfg.engine = kind;
  cfg.warmup_txns = 2000;
  cfg.measure_txns = 6000;
  return cfg;
}

/// Smaller windows for heavy (100-row / TPC-C-scale) transactions.
inline core::ExperimentConfig HeavyTxnConfig(engine::EngineKind kind) {
  core::ExperimentConfig cfg = DefaultConfig(kind);
  cfg.warmup_txns = 400;
  cfg.measure_txns = 1500;
  return cfg;
}

inline std::string Label(engine::EngineKind kind, const std::string& sub) {
  return std::string(engine::EngineKindName(kind)) + " " + sub;
}

/// When IMOLTP_JSON_DIR is set, dumps `rows` as one schema-versioned
/// JSON document to $IMOLTP_JSON_DIR/<name>.json so figure sweeps can
/// be archived and regression-diffed with imoltp_diff. No-op otherwise.
inline void ExportRowsJson(const char* name, const char* title,
                           const std::vector<core::ReportRow>& rows,
                           const mcsim::CycleModelParams& params = {}) {
  const char* dir = std::getenv("IMOLTP_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return;
  obs::JsonWriter w;
  w.BeginObject();
  w.KeyValue("schema_version", obs::kReportSchemaVersion);
  w.KeyValue("figure", name);
  w.KeyValue("title", title);
  w.Key("rows");
  w.BeginArray();
  for (const core::ReportRow& r : rows) {
    w.BeginObject();
    w.KeyValue("label", r.label);
    w.Key("window");
    obs::WindowReportToJson(w, r.report, params);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  const std::string path = std::string(dir) + "/" + name + ".json";
  const Status s = obs::WriteJsonFile(path, w.TakeString());
  if (!s.ok()) {
    std::fprintf(stderr, "ExportRowsJson: %s\n", s.ToString().c_str());
  } else {
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }
}

inline void PrintHeader(const char* figure, const char* caption) {
  std::printf("\n");
  std::printf(
      "==========================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf(
      "==========================================================\n");
}

}  // namespace imoltp::bench

#endif  // IMOLTP_BENCH_BENCH_COMMON_H_
