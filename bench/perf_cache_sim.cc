// Library micro-benchmarks (google-benchmark): raw throughput of the
// simulation substrate itself. These measure the REPRODUCTION's code,
// not the paper's systems — they bound how fast the figure benches run.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "mcsim/machine.h"

namespace imoltp::mcsim {
namespace {

void BM_CacheAccessHit(benchmark::State& state) {
  Cache cache(CacheConfig{32 * 1024, 64, 8});
  for (uint64_t i = 0; i < 512; ++i) cache.Access(i);
  uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(line));
    line = (line + 1) & 511;
  }
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheAccessMissStream(benchmark::State& state) {
  Cache cache(CacheConfig{32 * 1024, 64, 8});
  uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(line));
    line += 513;  // never reuses a set-resident line
  }
}
BENCHMARK(BM_CacheAccessMissStream);

void BM_HierarchyDataRead(benchmark::State& state) {
  MachineConfig cfg;
  cfg.model_tlb = state.range(0) != 0;
  MachineSim machine(cfg);
  Rng rng(1);
  for (auto _ : state) {
    machine.core(0).Read(rng.Next() & ((1ULL << 30) - 1), 8);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyDataRead)->Arg(0)->Arg(1);

void BM_RegionExecution(benchmark::State& state) {
  MachineSim machine;
  CodeRegion region = machine.code_space().Define(
      kNoModule, static_cast<uint32_t>(state.range(0)),
      static_cast<uint32_t>(state.range(0)), 1000, 5.0);
  for (auto _ : state) {
    machine.core(0).ExecuteRegion(region);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegionExecution)->Arg(2 << 10)->Arg(16 << 10)->Arg(64 << 10);

}  // namespace
}  // namespace imoltp::mcsim

BENCHMARK_MAIN();
