// Ablation ("OLTP through the looking glass", paper ref [8]): run the
// Shore-MT archetype with and without its buffer pool. Without it, rows
// live in direct in-memory tables and the page-table/latch/pin access
// path disappears — quantifying the component the in-memory systems
// removed by design (paper Section 2.1).

#include "bench/bench_common.h"

using namespace imoltp;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  std::vector<core::ReportRow> rows;

  for (bool use_bp : {true, false}) {
    std::fprintf(stderr, "  running use_bufferpool=%d...\n", use_bp);
    core::MicroConfig mcfg;
    mcfg.nominal_bytes = 100ULL << 30;
    mcfg.max_resident_rows = 2'000'000;
    mcfg.read_write = true;
    core::MicroBenchmark wl(mcfg);
    core::ExperimentConfig cfg =
        bench::DefaultConfig(engine::EngineKind::kShoreMt);
    cfg.engine_options.use_bufferpool = use_bp;
    const mcsim::WindowReport report = bench::RunOnce(cfg, &wl);
    rows.push_back({use_bp ? "Shore-MT with buffer pool"
                           : "Shore-MT without buffer pool",
                    report});
  }

  bench::PrintHeader("Ablation",
                     "Buffer pool overhead inside a disk-based engine");
  core::PrintIpc("Read-write micro, 1 row, 100GB", rows);
  core::PrintStallsPerKInstr("Read-write micro, 1 row, 100GB", rows);
  std::printf(
      "\nRemoving the buffer pool removes per-access page-table probes,\n"
      "latching, and pinning: instructions per transaction drop by "
      "%.0f%%.\n",
      100.0 * (rows[0].report.instructions_per_txn -
               rows[1].report.instructions_per_txn) /
          rows[0].report.instructions_per_txn);

  bench::ExportRowsJson("ablation_bufferpool",
                        "Buffer pool overhead ablation", rows);
  return 0;
}
