// Figures 4-6 (and appendix twins 23-25): sensitivity to the amount of
// work per transaction at 100GB. The number of rows read (updated) per
// transaction grows 1 → 10 → 100.
//
//   Fig 4 / 23: IPC vs rows per transaction
//   Fig 5 / 24: stall cycles per 1000 instructions
//   Fig 6 / 25: stall cycles per transaction

#include "bench/bench_common.h"

using namespace imoltp;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  constexpr uint64_t kNominal = 100ULL << 30;
  constexpr uint64_t kResidentRows = 2'000'000;
  const int kRowCounts[] = {1, 10, 100};

  std::vector<core::ReportRow> ipc_ro, ipc_rw;
  std::vector<core::ReportRow> stalls_ro, stalls_rw;
  std::vector<core::ReportRow> txn_ro, txn_rw;

  bench::ForEachEngine([&](engine::EngineKind kind) {
    // One populated 100GB database per engine; six windows on it.
    core::MicroConfig base;
    base.nominal_bytes = kNominal;
    base.max_resident_rows = kResidentRows;
    core::MicroBenchmark schema_source(base);
    auto runner =
        bench::MakeRunner(bench::HeavyTxnConfig(kind), &schema_source);

    for (int rows : kRowCounts) {
      std::fprintf(stderr, "    %d rows...\n", rows);
      core::MicroConfig cfg = base;
      cfg.rows_per_txn = rows;
      core::MicroBenchmark ro(cfg);
      cfg.read_write = true;
      core::MicroBenchmark rw(cfg);

      const std::string label =
          bench::Label(kind, std::to_string(rows) + " rows");
      const mcsim::WindowReport ro_report = bench::RunWindow(*runner, &ro);
      ipc_ro.push_back({label, ro_report});
      stalls_ro.push_back({label, ro_report});
      txn_ro.push_back({label, ro_report});

      const mcsim::WindowReport rw_report = bench::RunWindow(*runner, &rw);
      ipc_rw.push_back({label, rw_report});
      stalls_rw.push_back({label, rw_report});
      txn_rw.push_back({label, rw_report});
    }
  });

  bench::PrintHeader("Figure 4",
                     "IPC vs rows read per transaction (100GB)");
  core::PrintIpc("Read-only micro-benchmark", ipc_ro);
  bench::PrintHeader("Figure 5",
                     "Stall cycles per k-instruction vs rows read");
  core::PrintStallsPerKInstr("Read-only micro-benchmark", stalls_ro);
  bench::PrintHeader("Figure 6",
                     "Stall cycles per transaction vs rows read");
  core::PrintStallsPerTxn("Read-only micro-benchmark", txn_ro);

  bench::PrintHeader("Figure 23 (appendix)",
                     "IPC vs rows updated per transaction (100GB)");
  core::PrintIpc("Read-write micro-benchmark", ipc_rw);
  bench::PrintHeader("Figure 24 (appendix)",
                     "Stall cycles per k-instruction vs rows updated");
  core::PrintStallsPerKInstr("Read-write micro-benchmark", stalls_rw);
  bench::PrintHeader("Figure 25 (appendix)",
                     "Stall cycles per transaction vs rows updated");
  core::PrintStallsPerTxn("Read-write micro-benchmark", txn_rw);

  bench::ExportRowsJson("fig04_05_06_work_ro",
                        "Micro-benchmark vs rows per txn (read-only)",
                        ipc_ro);
  bench::ExportRowsJson("fig04_05_06_work_rw",
                        "Micro-benchmark vs rows per txn (read-write)",
                        ipc_rw);
  return 0;
}
