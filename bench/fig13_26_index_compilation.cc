// Figure 13 (and appendix twin Figure 26): the impact of index structure
// and transaction compilation on DBMS M — the one system where both can
// be toggled. Micro-benchmark, 10 rows per transaction, 100GB.
//
// Four configurations: {hash, B-tree} x {with, without compilation},
// read-only (Fig 13) and read-write (Fig 26).

#include "bench/bench_common.h"

using namespace imoltp;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  constexpr uint64_t kNominal = 100ULL << 30;
  struct Cell {
    const char* label;
    index::IndexKind index;
    bool compilation;
  };
  const Cell kCells[] = {
      {"Hash w/ compilation", index::IndexKind::kHash, true},
      {"Hash w/o compilation", index::IndexKind::kHash, false},
      {"B-tree w/ compilation", index::IndexKind::kBTreeCc, true},
      {"B-tree w/o compilation", index::IndexKind::kBTreeCc, false},
  };

  std::vector<core::ReportRow> ro_rows, rw_rows;
  for (const Cell& cell : kCells) {
    std::fprintf(stderr, "  running %s...\n", cell.label);
    core::MicroConfig mcfg;
    mcfg.nominal_bytes = kNominal;
    mcfg.max_resident_rows = 2'000'000;
    mcfg.rows_per_txn = 10;
    core::MicroBenchmark ro(mcfg);
    mcfg.read_write = true;
    core::MicroBenchmark rw(mcfg);

    core::ExperimentConfig cfg =
        bench::HeavyTxnConfig(engine::EngineKind::kDbmsM);
    cfg.engine_options.dbms_m_index = cell.index;
    cfg.engine_options.compilation = cell.compilation;
    auto runner = bench::MakeRunner(cfg, &ro);
    ro_rows.push_back({cell.label, bench::RunWindow(*runner, &ro)});
    rw_rows.push_back({cell.label, bench::RunWindow(*runner, &rw)});
  }

  bench::PrintHeader(
      "Figure 13",
      "DBMS M index x compilation, micro 10 rows 100GB (read-only)");
  core::PrintStallsPerKInstr("Read-only", ro_rows);
  bench::PrintHeader(
      "Figure 26 (appendix)",
      "DBMS M index x compilation, micro 10 rows 100GB (read-write)");
  core::PrintStallsPerKInstr("Read-write", rw_rows);

  bench::ExportRowsJson("fig13_index_compilation_ro",
                        "DBMS M index x compilation (read-only)",
                        ro_rows);
  bench::ExportRowsJson("fig26_index_compilation_rw",
                        "DBMS M index x compilation (read-write)",
                        rw_rows);
  return 0;
}
