// Figure 7: the percentage of execution time spent inside the OLTP
// engine (storage manager) as work per transaction grows, for the three
// systems the paper breaks down: DBMS D, VoltDB, and DBMS M.

#include "bench/bench_common.h"

using namespace imoltp;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  constexpr uint64_t kNominal = 100ULL << 30;
  const engine::EngineKind kEngines[] = {engine::EngineKind::kDbmsD,
                                         engine::EngineKind::kVoltDb,
                                         engine::EngineKind::kDbmsM};
  const int kRowCounts[] = {1, 10, 100};

  std::vector<core::ReportRow> shares;
  std::vector<core::ReportRow> details;

  for (engine::EngineKind kind : kEngines) {
    core::MicroConfig base;
    base.nominal_bytes = kNominal;
    base.max_resident_rows = 2'000'000;
    core::MicroBenchmark schema_source(base);
    auto runner =
        bench::MakeRunner(bench::HeavyTxnConfig(kind), &schema_source);
    for (int rows : kRowCounts) {
      std::fprintf(stderr, "  running %s, %d rows...\n",
                   engine::EngineKindName(kind), rows);
      core::MicroConfig cfg = base;
      cfg.rows_per_txn = rows;
      core::MicroBenchmark wl(cfg);
      const mcsim::WindowReport report = bench::RunWindow(*runner, &wl);
      const std::string label =
          bench::Label(kind, std::to_string(rows) + " rows");
      shares.push_back({label, report});
      if (rows == 10) details.push_back({label, report});
    }
  }

  bench::PrintHeader("Figure 7",
                     "% of time inside the OLTP engine vs rows read");
  core::PrintEngineShare("Read-only micro-benchmark, 100GB", shares);

  // Supporting detail: the full per-module breakdown at 10 rows.
  for (const core::ReportRow& row : details) {
    core::PrintModuleBreakdown("Module detail", row);
  }

  bench::ExportRowsJson("fig07_module_breakdown",
                        "Engine share and module detail vs rows read",
                        shares);
  return 0;
}
