// Figure 15 (and appendix twin Figure 27): the impact of the column data
// type — two 50-byte Strings vs two 8-byte Longs — on the in-memory
// systems. Larger items give better spatial locality per comparison, so
// LLC data stalls per k-instruction drop for the tree-indexed engines
// (Section 6.2).

#include "bench/bench_common.h"

using namespace imoltp;

int main(int argc, char** argv) {
  bench::ParseBenchArgs(argc, argv);
  constexpr uint64_t kNominal = 100ULL << 30;
  const engine::EngineKind kEngines[] = {engine::EngineKind::kVoltDb,
                                         engine::EngineKind::kHyPer,
                                         engine::EngineKind::kDbmsM};

  std::vector<core::ReportRow> ro_rows, rw_rows;
  for (engine::EngineKind kind : kEngines) {
    for (bool strings : {true, false}) {
      std::fprintf(stderr, "  running %s %s...\n",
                   engine::EngineKindName(kind),
                   strings ? "String" : "Long");
      core::MicroConfig mcfg;
      mcfg.nominal_bytes = kNominal;
      mcfg.max_resident_rows = 2'000'000;
      mcfg.string_columns = strings;
      core::MicroBenchmark ro(mcfg);
      mcfg.read_write = true;
      core::MicroBenchmark rw(mcfg);

      auto runner = bench::MakeRunner(bench::DefaultConfig(kind), &ro);
      const std::string label =
          bench::Label(kind, strings ? "String" : "Long");
      ro_rows.push_back({label, bench::RunWindow(*runner, &ro)});
      rw_rows.push_back({label, bench::RunWindow(*runner, &rw)});
    }
  }

  bench::PrintHeader("Figure 15",
                     "String vs Long data types (read-only, 100GB)");
  core::PrintStallsPerKInstr("Read-only micro-benchmark", ro_rows);
  bench::PrintHeader("Figure 27 (appendix)",
                     "String vs Long data types (read-write, 100GB)");
  core::PrintStallsPerKInstr("Read-write micro-benchmark", rw_rows);

  bench::ExportRowsJson("fig15_datatype_ro",
                        "String vs Long data types (read-only)", ro_rows);
  bench::ExportRowsJson("fig27_datatype_rw",
                        "String vs Long data types (read-write)", rw_rows);
  return 0;
}
